//! End-to-end smoke tests driving the compiled `dmfb` binary.

use std::process::{Command, Output};

fn dmfb(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dmfb"))
        .args(args)
        .output()
        .expect("spawn dmfb")
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = dmfb(&["--help"]);
    assert!(out.status.success(), "--help exited nonzero");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("USAGE"), "usage missing:\n{text}");
    assert!(text.contains("dmfb yield"), "commands missing:\n{text}");
}

#[test]
fn unknown_command_fails_with_error() {
    let out = dmfb(&["frobnicate"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown command"), "stderr:\n{err}");
}

#[test]
fn small_yield_report_runs_end_to_end() {
    let out = dmfb(&[
        "yield",
        "--design",
        "dtmb26",
        "--primaries",
        "60",
        "--p",
        "0.95",
        "--trials",
        "300",
        "--seed",
        "7",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("raw yield"), "report missing:\n{text}");
    assert!(
        text.contains("reconfigured yield"),
        "report missing:\n{text}"
    );
    assert!(text.contains("DTMB(2,6)"), "design missing:\n{text}");
}

#[test]
fn yield_report_is_deterministic_for_a_seed() {
    let args = [
        "yield",
        "--design",
        "dtmb16",
        "--primaries",
        "40",
        "--p",
        "0.9",
        "--trials",
        "200",
        "--seed",
        "11",
    ];
    let a = dmfb(&args);
    let b = dmfb(&args);
    assert!(a.status.success() && b.status.success());
    assert_eq!(a.stdout, b.stdout, "same seed must give identical reports");
}
