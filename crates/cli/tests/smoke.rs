//! End-to-end smoke tests driving the compiled `dmfb` binary.

use std::process::{Command, Output};

fn dmfb(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dmfb"))
        .args(args)
        .output()
        .expect("spawn dmfb")
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = dmfb(&["--help"]);
    assert!(out.status.success(), "--help exited nonzero");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("USAGE"), "usage missing:\n{text}");
    assert!(text.contains("dmfb yield"), "commands missing:\n{text}");
}

#[test]
fn unknown_command_fails_with_error() {
    let out = dmfb(&["frobnicate"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown command"), "stderr:\n{err}");
}

#[test]
fn small_yield_report_runs_end_to_end() {
    let out = dmfb(&[
        "yield",
        "--design",
        "dtmb26",
        "--primaries",
        "60",
        "--p",
        "0.95",
        "--trials",
        "300",
        "--seed",
        "7",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("raw yield"), "report missing:\n{text}");
    assert!(
        text.contains("reconfigured yield"),
        "report missing:\n{text}"
    );
    assert!(text.contains("DTMB(2,6)"), "design missing:\n{text}");
}

#[test]
fn yield_report_is_deterministic_for_a_seed() {
    let args = [
        "yield",
        "--design",
        "dtmb16",
        "--primaries",
        "40",
        "--p",
        "0.9",
        "--trials",
        "200",
        "--seed",
        "11",
    ];
    let a = dmfb(&args);
    let b = dmfb(&args);
    assert!(a.status.success() && b.status.success());
    assert_eq!(a.stdout, b.stdout, "same seed must give identical reports");
}

#[test]
fn batched_sweep_emits_monotone_csv() {
    let out = dmfb(&[
        "sweep",
        "--design",
        "dtmb44",
        "--primaries",
        "60",
        "--from",
        "0.85",
        "--to",
        "1.0",
        "--steps",
        "4",
        "--trials",
        "400",
        "--seed",
        "5",
        "--batched",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    let mut lines = text.lines();
    assert_eq!(lines.next(), Some("p,yield,ci_lo,ci_hi"));
    let yields: Vec<f64> = lines
        .map(|l| l.split(',').nth(1).unwrap().parse().unwrap())
        .collect();
    assert_eq!(yields.len(), 4);
    // Common random numbers make the batched curve monotone in p.
    for w in yields.windows(2) {
        assert!(w[1] >= w[0], "batched curve must be monotone: {yields:?}");
    }
    assert_eq!(*yields.last().unwrap(), 1.0, "p=1 never fails");
}

#[test]
fn unknown_scheme_lists_choices_and_fails() {
    for cmd in ["yield", "sweep", "bench"] {
        let out = dmfb(&[cmd, "--scheme", "triangular"]);
        assert!(!out.status.success(), "{cmd} must reject unknown scheme");
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(
            err.contains("unknown scheme 'triangular'")
                && err.contains("hex-dtmb")
                && err.contains("square-dtmb")
                && err.contains("spare-rows"),
            "{cmd} stderr must list valid schemes:\n{err}"
        );
    }
}

#[test]
fn square_scheme_yield_reports_through_fast_engine() {
    let out = dmfb(&[
        "yield",
        "--scheme",
        "square-dtmb",
        "--pattern",
        "checkerboard",
        "--width",
        "10",
        "--height",
        "10",
        "--p",
        "0.95",
        "--trials",
        "300",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("checkerboard"), "label missing:\n{text}");
    assert!(
        text.contains("reconfigured yield"),
        "report missing:\n{text}"
    );
}

#[test]
fn batched_scheme_sweeps_are_monotone_and_thread_invariant() {
    // The acceptance bar: `sweep --batched` for square-dtmb and
    // spare-rows rides the bitset/CRN fast path and is byte-identical
    // for any --threads value.
    let cases: [&[&str]; 2] = [
        &["--scheme", "square-dtmb", "--pattern", "stripes"],
        &[
            "--scheme",
            "spare-rows",
            "--width",
            "6",
            "--module-rows",
            "5",
        ],
    ];
    for extra in cases {
        let mut base = vec![
            "sweep",
            "--batched",
            "--from",
            "0.85",
            "--to",
            "1.0",
            "--steps",
            "4",
            "--trials",
            "400",
            "--seed",
            "5",
        ];
        base.extend_from_slice(extra);
        let reference = dmfb(&base);
        assert!(
            reference.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&reference.stderr)
        );
        let text = String::from_utf8(reference.stdout.clone()).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("p,yield,ci_lo,ci_hi"));
        let yields: Vec<f64> = lines
            .map(|l| l.split(',').nth(1).unwrap().parse().unwrap())
            .collect();
        assert_eq!(yields.len(), 4, "{extra:?}");
        for w in yields.windows(2) {
            assert!(w[1] >= w[0], "batched curve must be monotone: {yields:?}");
        }
        assert_eq!(*yields.last().unwrap(), 1.0, "p=1 never fails");
        for threads in ["1", "3", "8"] {
            let mut args = base.clone();
            args.extend_from_slice(&["--threads", threads]);
            let par = dmfb(&args);
            assert!(par.status.success());
            assert_eq!(
                par.stdout, reference.stdout,
                "{extra:?} --threads {threads} must be byte-identical"
            );
        }
    }
}

#[test]
fn effective_column_rejected_off_hex() {
    let out = dmfb(&["sweep", "--scheme", "spare-rows", "--effective"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--effective"), "stderr:\n{err}");
}

#[test]
fn yield_rejects_mismatched_scheme_subparameters() {
    // Forgetting --scheme square-dtmb must not silently measure hex.
    let out = dmfb(&["yield", "--pattern", "checkerboard", "--trials", "100"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(
        err.contains("--pattern") && err.contains("hex-dtmb"),
        "stderr:\n{err}"
    );
}

#[test]
fn hex_only_commands_reject_other_schemes() {
    for cmd in ["faults", "render", "assay", "profile"] {
        let out = dmfb(&[cmd, "--scheme", "square-dtmb"]);
        assert!(!out.status.success(), "{cmd} must reject non-hex schemes");
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(
            err.contains("hexagonal arrays only"),
            "{cmd} stderr:\n{err}"
        );
    }
}

#[test]
fn bench_rejects_scheme_subparameters() {
    // Bench runs a fixed suite per scheme; accepting-and-ignoring
    // sub-parameters would mislabel what was measured.
    let out = dmfb(&[
        "bench",
        "--quick",
        "--scheme",
        "square-dtmb",
        "--pattern",
        "quarter",
    ]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(
        err.contains("--pattern") && err.contains("fixed workload"),
        "stderr:\n{err}"
    );
}

#[test]
fn bench_json_records_scheme_per_entry() {
    let dir = std::env::temp_dir().join(format!("dmfb-bench-scheme-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out = dmfb(&[
        "bench",
        "--quick",
        "--json",
        "--scheme",
        "square-dtmb",
        "--out",
        dir.to_str().unwrap(),
        "--label",
        "sq-smoke",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(dir.join("BENCH_sq-smoke.json")).expect("report written");
    assert!(json.contains("\"scheme\":\"square-dtmb\""), "{json}");
    assert!(json.contains("square-stripes/batched-sweep"), "{json}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bench_json_quick_writes_valid_report() {
    let dir = std::env::temp_dir().join(format!("dmfb-bench-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out = dmfb(&[
        "bench",
        "--quick",
        "--json",
        "--out",
        dir.to_str().unwrap(),
        "--label",
        "smoke",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("point-trials/s"), "table missing:\n{text}");
    assert!(
        text.contains("dtmb26/incremental") && text.contains("dtmb44/batched-sweep"),
        "workloads missing:\n{text}"
    );
    let report_path = dir.join("BENCH_smoke.json");
    assert!(
        text.contains("BENCH_smoke.json"),
        "path not echoed:\n{text}"
    );
    let json = std::fs::read_to_string(&report_path).expect("report file written");
    for key in [
        "\"schema\":\"dmfb-bench/1\"",
        "\"label\":\"smoke\"",
        "\"entries\":[",
        "\"trials_per_sec\":",
        "\"yield_estimate\":",
    ] {
        assert!(json.contains(key), "missing {key} in:\n{json}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn assay_yield_reports_three_tiers() {
    let out = dmfb(&[
        "yield",
        "--scheme",
        "hex-dtmb",
        "--assay",
        "ivd-panel",
        "--p",
        "0.95",
        "--trials",
        "200",
        "--seed",
        "3",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("raw yield"), "report missing:\n{text}");
    assert!(
        text.contains("reconfigured yield"),
        "report missing:\n{text}"
    );
    assert!(
        text.contains("operational yield"),
        "report missing:\n{text}"
    );
    assert!(text.contains("ivd-panel"), "panel label missing:\n{text}");
    // Parse the three points and check the tier ordering.
    let point = |name: &str| -> f64 {
        text.lines()
            .find(|l| l.starts_with(name))
            .unwrap_or_else(|| panic!("line '{name}' missing:\n{text}"))
            .split(':')
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };
    let raw = point("raw yield");
    let rec = point("reconfigured yield");
    let op = point("operational yield");
    assert!(op <= rec, "operational {op} > reconfigured {rec}");
    assert!(raw <= rec, "raw {raw} > reconfigured {rec}");
    assert!(rec > raw, "three tiers should be distinct at p = 0.95");
}

#[test]
fn assay_results_are_byte_identical_across_thread_counts() {
    let run = |threads: &str| {
        let out = dmfb(&[
            "yield",
            "--assay",
            "metabolic-panel",
            "--trials",
            "150",
            "--seed",
            "11",
            "--threads",
            threads,
        ]);
        assert!(
            out.status.success(),
            "threads={threads} stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let one = run("1");
    assert_eq!(one, run("2"), "--threads 2 must match --threads 1");
    assert_eq!(one, run("0"), "--threads 0 (auto) must match --threads 1");
}

#[test]
fn assay_sweep_emits_three_tier_csv() {
    let out = dmfb(&[
        "sweep",
        "--assay",
        "ivd-panel",
        "--from",
        "0.92",
        "--to",
        "1.0",
        "--steps",
        "3",
        "--trials",
        "150",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    let mut lines = text.lines();
    assert_eq!(
        lines.next(),
        Some("p,raw,reconfigured,operational,op_ci_lo,op_ci_hi")
    );
    let mut rows = 0;
    for line in lines {
        let cols: Vec<f64> = line.split(',').map(|c| c.parse().unwrap()).collect();
        assert_eq!(cols.len(), 6, "bad row: {line}");
        let (raw, rec, op) = (cols[1], cols[2], cols[3]);
        assert!(op <= rec, "operational above reconfigured in: {line}");
        assert!(raw <= rec, "raw above reconfigured in: {line}");
        rows += 1;
    }
    assert_eq!(rows, 3);
    // p = 1.0: all three tiers at 1.
    assert!(text
        .lines()
        .last()
        .unwrap()
        .starts_with("1.0000,1.0000,1.0000,1.0000"));
}

#[test]
fn assay_rejections_cover_every_command() {
    // Non-hex schemes cannot carry the assay workload.
    let out = dmfb(&["yield", "--scheme", "square-dtmb", "--assay", "ivd-panel"]);
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("--assay requires --scheme hex-dtmb"));
    // The assay chip is fixed: array-shaping sub-parameters are rejected.
    let out = dmfb(&["yield", "--assay", "ivd-panel", "--primaries", "60"]);
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("fixes the chip"));
    // Commands without an assay mode say so instead of ignoring the flag.
    for cmd in ["faults", "render", "assay", "profile"] {
        let out = dmfb(&[cmd, "--assay", "ivd-panel"]);
        assert!(!out.status.success(), "{cmd} must reject --assay");
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(
            err.contains("yield, sweep and bench"),
            "{cmd} stderr:\n{err}"
        );
    }
    // Sweep-only modifiers that conflict with the assay engine.
    for flag in ["--batched", "--effective"] {
        let out = dmfb(&["sweep", "--assay", "ivd-panel", flag]);
        assert!(!out.status.success(), "{flag} must be rejected");
    }
    // Unknown panels list the valid choices.
    let out = dmfb(&["yield", "--assay", "nope"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("ivd-panel") && err.contains("metabolic-panel"));
}

#[test]
fn bench_assay_records_operational_columns() {
    let dir = std::env::temp_dir().join(format!("dmfb-bench-assay-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out = dmfb(&[
        "bench",
        "--quick",
        "--json",
        "--assay",
        "ivd-panel",
        "--out",
        dir.to_str().unwrap(),
        "--label",
        "assay-smoke",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.contains("ivd-panel/operational-point")
            && text.contains("ivd-panel/operational-sweep"),
        "workloads missing:\n{text}"
    );
    let json = std::fs::read_to_string(dir.join("BENCH_assay-smoke.json")).expect("report written");
    assert!(json.contains("\"assay\":\"ivd-panel\""), "{json}");
    assert!(json.contains("\"operational_yield\":0"), "{json}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stratified_yield_reports_rare_event_bookkeeping() {
    let out = dmfb(&[
        "yield",
        "--design",
        "dtmb26",
        "--primaries",
        "60",
        "--p",
        "0.999",
        "--estimator",
        "stratified",
        "--trials",
        "500",
        "--seed",
        "3",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("strata"), "strata count missing:\n{text}");
    assert!(text.contains("effective samples"), "{text}");
    assert!(text.contains("truncated mass"), "{text}");
}

#[test]
fn stratified_sweep_is_thread_invariant_and_carries_new_columns() {
    let run = |threads: &str| {
        let out = dmfb(&[
            "sweep",
            "--design",
            "dtmb26",
            "--primaries",
            "60",
            "--from",
            "0.99",
            "--to",
            "1.0",
            "--steps",
            "3",
            "--estimator",
            "stratified",
            "--trials",
            "400",
            "--seed",
            "5",
            "--threads",
            threads,
        ]);
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };
    let one = run("1");
    assert!(
        one.starts_with("p,yield,ci_lo,ci_hi,std_err,eff_samples"),
        "{one}"
    );
    assert_eq!(one, run("0"), "--threads 0 must be byte-identical");
    assert_eq!(one, run("3"), "--threads 3 must be byte-identical");
}

#[test]
fn clustered_defect_model_runs_on_every_scheme() {
    // Hex.
    let out = dmfb(&[
        "yield",
        "--design",
        "dtmb26",
        "--primaries",
        "60",
        "--defect-model",
        "clustered",
        "--cluster-mean",
        "2",
        "--trials",
        "300",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("clustered"), "{text}");
    assert!(text.contains("expected failures/chip"), "{text}");
    // Square scheme through the generic engine.
    let out = dmfb(&[
        "yield",
        "--scheme",
        "square-dtmb",
        "--pattern",
        "checkerboard",
        "--defect-model",
        "clustered",
        "--trials",
        "300",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Assay (three tiers under clustered defects).
    let out = dmfb(&[
        "yield",
        "--assay",
        "ivd-panel",
        "--defect-model",
        "clustered",
        "--trials",
        "100",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("operational yield"), "{text}");
}

#[test]
fn estimator_and_model_flags_reject_foreign_parameters() {
    for (args, needle) in [
        (
            vec!["yield", "--tolerance", "0.1"],
            "--tolerance requires --estimator stratified",
        ),
        (
            vec!["yield", "--cluster-radius", "3"],
            "requires --defect-model clustered",
        ),
        (
            vec![
                "yield",
                "--estimator",
                "stratified",
                "--defect-model",
                "clustered",
            ],
            "cannot run under --defect-model clustered",
        ),
        (
            vec!["sweep", "--defect-model", "clustered"],
            "no survival probability to sweep",
        ),
        (
            vec!["sweep", "--estimator", "stratified", "--batched"],
            "--batched does not apply with --estimator stratified",
        ),
        (
            vec!["faults", "--casestudy", "--estimator", "stratified"],
            "yield and sweep only",
        ),
        (
            vec!["bench", "--estimator", "stratified"],
            "not supported by bench",
        ),
        (
            vec!["yield", "--defect-model", "clustered", "--p", "0.9"],
            "--p does not apply",
        ),
        (vec!["yield", "--estimator", "bogus"], "unknown estimator"),
        (
            vec!["yield", "--defect-model", "bogus"],
            "unknown defect model",
        ),
    ] {
        let out = dmfb(&args);
        assert!(!out.status.success(), "{args:?} must fail");
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(err.contains(needle), "{args:?}: stderr {err}");
    }
}

#[test]
fn bench_compare_gates_on_committed_baselines() {
    let dir = std::env::temp_dir().join(format!("dmfb-bench-compare-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    // Produce a baseline with the cheap spare-rows suite, then compare a
    // fresh identical run against it: same machine, same workloads — the
    // gate must pass.
    let out = dmfb(&[
        "bench",
        "--quick",
        "--json",
        "--scheme",
        "spare-rows",
        "--out",
        dir.to_str().unwrap(),
        "--label",
        "compare-base",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let baseline = dir.join("BENCH_compare-base.json");
    let out = dmfb(&[
        "bench",
        "--quick",
        "--scheme",
        "spare-rows",
        "--compare",
        baseline.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "gate must pass on a same-machine rerun; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("perf gate passed"), "{text}");
    assert!(text.contains("machine factor"), "{text}");
    // Comparing the wrong scheme's run against the baseline loses every
    // baseline workload: the gate must fail non-zero.
    let out = dmfb(&[
        "bench",
        "--quick",
        "--scheme",
        "square-dtmb",
        "--compare",
        baseline.to_str().unwrap(),
    ]);
    assert!(
        !out.status.success(),
        "vanished workloads must fail the gate"
    );
    // A missing baseline file is a clean error.
    let out = dmfb(&["bench", "--quick", "--compare", "/nonexistent/base.json"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("cannot read baseline"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bench_json_records_estimator_columns() {
    let dir = std::env::temp_dir().join(format!("dmfb-bench-est-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out = dmfb(&[
        "bench",
        "--quick",
        "--json",
        "--out",
        dir.to_str().unwrap(),
        "--label",
        "est-smoke",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(dir.join("BENCH_est-smoke.json")).unwrap();
    assert!(json.contains("\"estimator\":\"stratified\""), "{json}");
    assert!(json.contains("\"estimator\":\"naive\""), "{json}");
    assert!(json.contains("\"defect_model\":\"bernoulli\""), "{json}");
    assert!(json.contains("rare-stratified"), "{json}");
    assert!(json.contains("\"effective_samples\":"), "{json}");
    std::fs::remove_dir_all(&dir).ok();
}
