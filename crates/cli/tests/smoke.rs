//! End-to-end smoke tests driving the compiled `dmfb` binary.

use std::process::{Command, Output};

fn dmfb(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dmfb"))
        .args(args)
        .output()
        .expect("spawn dmfb")
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = dmfb(&["--help"]);
    assert!(out.status.success(), "--help exited nonzero");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("USAGE"), "usage missing:\n{text}");
    assert!(text.contains("dmfb yield"), "commands missing:\n{text}");
}

#[test]
fn unknown_command_fails_with_error() {
    let out = dmfb(&["frobnicate"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown command"), "stderr:\n{err}");
}

#[test]
fn small_yield_report_runs_end_to_end() {
    let out = dmfb(&[
        "yield",
        "--design",
        "dtmb26",
        "--primaries",
        "60",
        "--p",
        "0.95",
        "--trials",
        "300",
        "--seed",
        "7",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("raw yield"), "report missing:\n{text}");
    assert!(
        text.contains("reconfigured yield"),
        "report missing:\n{text}"
    );
    assert!(text.contains("DTMB(2,6)"), "design missing:\n{text}");
}

#[test]
fn yield_report_is_deterministic_for_a_seed() {
    let args = [
        "yield",
        "--design",
        "dtmb16",
        "--primaries",
        "40",
        "--p",
        "0.9",
        "--trials",
        "200",
        "--seed",
        "11",
    ];
    let a = dmfb(&args);
    let b = dmfb(&args);
    assert!(a.status.success() && b.status.success());
    assert_eq!(a.stdout, b.stdout, "same seed must give identical reports");
}

#[test]
fn batched_sweep_emits_monotone_csv() {
    let out = dmfb(&[
        "sweep",
        "--design",
        "dtmb44",
        "--primaries",
        "60",
        "--from",
        "0.85",
        "--to",
        "1.0",
        "--steps",
        "4",
        "--trials",
        "400",
        "--seed",
        "5",
        "--batched",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    let mut lines = text.lines();
    assert_eq!(lines.next(), Some("p,yield,ci_lo,ci_hi"));
    let yields: Vec<f64> = lines
        .map(|l| l.split(',').nth(1).unwrap().parse().unwrap())
        .collect();
    assert_eq!(yields.len(), 4);
    // Common random numbers make the batched curve monotone in p.
    for w in yields.windows(2) {
        assert!(w[1] >= w[0], "batched curve must be monotone: {yields:?}");
    }
    assert_eq!(*yields.last().unwrap(), 1.0, "p=1 never fails");
}

#[test]
fn bench_json_quick_writes_valid_report() {
    let dir = std::env::temp_dir().join(format!("dmfb-bench-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out = dmfb(&[
        "bench",
        "--quick",
        "--json",
        "--out",
        dir.to_str().unwrap(),
        "--label",
        "smoke",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("point-trials/s"), "table missing:\n{text}");
    assert!(
        text.contains("dtmb26/incremental") && text.contains("dtmb44/batched-sweep"),
        "workloads missing:\n{text}"
    );
    let report_path = dir.join("BENCH_smoke.json");
    assert!(
        text.contains("BENCH_smoke.json"),
        "path not echoed:\n{text}"
    );
    let json = std::fs::read_to_string(&report_path).expect("report file written");
    for key in [
        "\"schema\":\"dmfb-bench/1\"",
        "\"label\":\"smoke\"",
        "\"entries\":[",
        "\"trials_per_sec\":",
        "\"yield_estimate\":",
    ] {
        assert!(json.contains(key), "missing {key} in:\n{json}");
    }
    std::fs::remove_dir_all(&dir).ok();
}
