//! Golden-file and error-path tests for `dmfb campaign`.
//!
//! The committed files under `tests/golden/` pin the exact bytes of the
//! campaign reports: markers, verdict table, headers. Any engine or
//! formatting change that moves a byte fails here, which is the point —
//! campaign replays are a determinism contract, not just a report.

use std::process::{Command, Output};

fn dmfb(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dmfb"))
        .args(args)
        .output()
        .expect("spawn dmfb")
}

fn golden(name: &str) -> String {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn assert_matches_golden(args: &[&str], golden_name: &str) {
    let out = dmfb(args);
    assert!(
        out.status.success(),
        "{args:?} stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(
        stdout,
        golden(golden_name),
        "{args:?} drifted from tests/golden/{golden_name}"
    );
}

#[test]
fn edge_column_wipeout_report_matches_golden() {
    assert_matches_golden(
        &[
            "campaign",
            "--name",
            "edge-column-wipeout",
            "--trials",
            "120",
            "--seed",
            "7",
        ],
        "campaign_edge-column-wipeout.txt",
    );
}

#[test]
fn report_is_byte_identical_across_thread_counts() {
    let args = |threads: &'static str| {
        vec![
            "campaign",
            "--name",
            "edge-column-wipeout",
            "--trials",
            "120",
            "--seed",
            "7",
            "--threads",
            threads,
        ]
    };
    let single = dmfb(&args("1"));
    let auto = dmfb(&args("0"));
    assert!(single.status.success() && auto.status.success());
    assert_eq!(single.stdout, auto.stdout, "--threads 1 vs 0 must agree");
    // And both agree with the committed golden (which used the default).
    let text = String::from_utf8(single.stdout).unwrap();
    assert_eq!(text, golden("campaign_edge-column-wipeout.txt"));
}

#[test]
fn rehearsal_matches_golden_and_is_damage_free() {
    assert_matches_golden(
        &[
            "campaign",
            "--name",
            "reservoir-cluster",
            "--seed",
            "11",
            "--rehearse",
        ],
        "campaign_reservoir-cluster_rehearse.txt",
    );
    let text = golden("campaign_reservoir-cluster_rehearse.txt");
    assert!(!text.contains("hostile"));
    assert!(text.contains("rehearsal (no damage injected)"));
}

#[test]
fn list_matches_golden_and_names_all_campaigns() {
    assert_matches_golden(&["campaign", "--list"], "campaign_list.txt");
    let text = golden("campaign_list.txt");
    for name in [
        "edge-column-wipeout",
        "reservoir-cluster",
        "wear-trajectory",
        "parametric-drift",
    ] {
        assert!(text.contains(name), "--list must name {name}");
    }
}

#[test]
fn script_file_matches_golden() {
    let dir = std::env::temp_dir().join("dmfb-campaign-smoke");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("smoke-custom.dmfb");
    std::fs::write(
        &path,
        "scenario smoke-custom\nstep calm\nstep cluster 3 5 radius 1 peak 1\nstep salvo 8\n",
    )
    .unwrap();
    assert_matches_golden(
        &[
            "campaign",
            "--script",
            path.to_str().unwrap(),
            "--trials",
            "60",
            "--seed",
            "5",
        ],
        "campaign_custom-script.txt",
    );
}

#[test]
fn unknown_campaign_lists_choices_and_exits_nonzero() {
    let out = dmfb(&["campaign", "--name", "volcano"]);
    assert!(!out.status.success(), "unknown campaign must exit non-zero");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown campaign 'volcano'"), "stderr:\n{err}");
    for name in [
        "edge-column-wipeout",
        "reservoir-cluster",
        "wear-trajectory",
        "parametric-drift",
    ] {
        assert!(err.contains(name), "error must list {name}:\n{err}");
    }
}

#[test]
fn missing_scenario_source_is_a_clean_error() {
    let out = dmfb(&["campaign"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--name") && err.contains("--script"), "{err}");

    let out = dmfb(&[
        "campaign",
        "--name",
        "edge-column-wipeout",
        "--script",
        "x.dmfb",
    ]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("mutually exclusive"), "{err}");

    let out = dmfb(&["campaign", "--script", "/nonexistent/x.dmfb"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("cannot read script"), "{err}");
}

#[test]
fn bad_script_reports_line_numbered_parse_error() {
    let dir = std::env::temp_dir().join("dmfb-campaign-smoke");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("broken.dmfb");
    std::fs::write(&path, "scenario broken\nstep explode 3\n").unwrap();
    let out = dmfb(&["campaign", "--script", path.to_str().unwrap()]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(
        err.contains("line 2") && err.contains("unknown action 'explode'"),
        "stderr:\n{err}"
    );
}

#[test]
fn foreign_parameters_are_rejected_not_ignored() {
    for (extra, needle) in [
        (&["--scheme", "square-dtmb"][..], "IVD case-study chip"),
        (&["--design", "dtmb44"][..], "fixes the chip"),
        (&["--primaries", "100"][..], "fixes the chip"),
        (&["--width", "16"][..], "fixes the chip"),
        (&["--estimator", "stratified"][..], "yield and sweep only"),
        (&["--defect-model", "clustered"][..], "yield and sweep only"),
        (&["--cluster-peak", "0.5"][..], "sub-parameter"),
        (&["--tolerance", "1e-6"][..], "sub-parameter"),
        (&["--block-trials", "64"][..], "scalar arbitrary-sampler"),
    ] {
        let mut args = vec!["campaign", "--name", "edge-column-wipeout"];
        args.extend_from_slice(extra);
        let out = dmfb(&args);
        assert!(!out.status.success(), "{extra:?} must be rejected");
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(err.contains(needle), "{extra:?} stderr:\n{err}");
    }
}

#[test]
fn invalid_p_and_trials_are_clean_errors() {
    let out = dmfb(&["campaign", "--name", "parametric-drift", "--p", "1.5"]);
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("0 <= p <= 1"));

    let out = dmfb(&["campaign", "--name", "parametric-drift", "--trials", "0"]);
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("--trials must be at least 1"));
}
