//! Property-based tests for the matching engine.

use dmfb_graph::{augmenting_path_matching, hall_violation, hopcroft_karp, BipartiteGraph};
use proptest::prelude::*;

/// A random bipartite graph strategy with both side sizes and an edge list.
fn arb_graph() -> impl Strategy<Value = BipartiteGraph> {
    (1usize..12, 1usize..12).prop_flat_map(|(l, r)| {
        prop::collection::vec((0..l, 0..r), 0..40).prop_map(move |edges| {
            let mut g = BipartiteGraph::new(l, r);
            for (a, b) in edges {
                g.add_edge(a, b);
            }
            g
        })
    })
}

proptest! {
    /// Hopcroft–Karp and Kuhn always agree on the maximum matching size,
    /// and both produce structurally valid matchings.
    #[test]
    fn algorithms_agree(g in arb_graph()) {
        let hk = hopcroft_karp(&g);
        let kuhn = augmenting_path_matching(&g);
        prop_assert_eq!(hk.len(), kuhn.len());
        prop_assert!(hk.is_valid(&g));
        prop_assert!(kuhn.is_valid(&g));
    }

    /// The matching never exceeds either side and never exceeds edge count.
    #[test]
    fn matching_bounds(g in arb_graph()) {
        let m = hopcroft_karp(&g);
        prop_assert!(m.len() <= g.left_count());
        prop_assert!(m.len() <= g.right_count());
        prop_assert!(m.len() <= g.edge_count());
    }

    /// König/Hall duality: exactly one of "left-saturating matching exists"
    /// and "a Hall violation exists"; the violation is genuinely deficient.
    #[test]
    fn hall_duality(g in arb_graph()) {
        let m = hopcroft_karp(&g);
        match hall_violation(&g) {
            None => prop_assert!(m.covers_all_left(&g)),
            Some(v) => {
                prop_assert!(!m.covers_all_left(&g));
                prop_assert!(v.deficiency() >= 1);
                // Verify the witness's neighbourhood against the graph.
                let mut nbhd: Vec<usize> = v
                    .left_set
                    .iter()
                    .flat_map(|&a| g.neighbors(a).to_vec())
                    .collect();
                nbhd.sort_unstable();
                nbhd.dedup();
                prop_assert_eq!(nbhd, v.neighborhood.clone());
                prop_assert!(v.left_set.len() > v.neighborhood.len());
            }
        }
    }

    /// Adding an edge never decreases the maximum matching.
    #[test]
    fn monotone_in_edges(g in arb_graph(), a_seed in 0usize..100, b_seed in 0usize..100) {
        let before = hopcroft_karp(&g).len();
        let mut g2 = g.clone();
        g2.add_edge(a_seed % g.left_count(), b_seed % g.right_count());
        let after = hopcroft_karp(&g2).len();
        prop_assert!(after >= before);
        prop_assert!(after <= before + 1);
    }

    /// Unmatched-left report is exactly the complement of matched pairs.
    #[test]
    fn unmatched_partition(g in arb_graph()) {
        let m = hopcroft_karp(&g);
        let matched: Vec<usize> = m.pairs().map(|(a, _)| a).collect();
        let unmatched = m.unmatched_left();
        prop_assert_eq!(matched.len() + unmatched.len(), g.left_count());
        for a in unmatched {
            prop_assert!(m.partner_of_left(a).is_none());
        }
    }
}
