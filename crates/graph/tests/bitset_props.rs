//! Property-based equivalence suite: the bitset Hopcroft–Karp matcher
//! against the augmenting-path (Kuhn) oracle, on random DTMB-shaped
//! bipartite graphs.
//!
//! "DTMB-shaped" mirrors what the simulator actually builds: left nodes
//! are faulty primary cells with at most `s ≤ 4` adjacent spares (the
//! paper's designs have `s ∈ {1, 2, 3, 4}`), and the right side is the
//! pool of fault-free spares, never larger than a few dozen for the array
//! sizes the figures sweep.

use dmfb_graph::{
    augmenting_path_matching, hopcroft_karp, hopcroft_karp_bitset, BipartiteGraph, BitsetGraph,
    BitsetMatcher,
};
use proptest::prelude::*;

/// A DTMB-shaped instance: per-left degree at most 4, both sides small.
fn arb_dtmb_graph() -> impl Strategy<Value = BipartiteGraph> {
    (1usize..32, 1usize..24).prop_flat_map(|(l, r)| {
        // For each left node: a degree 0..=4 and four candidate spares
        // (of which the first `degree` are used).
        prop::collection::vec((0usize..5, (0..r, 0..r, 0..r, 0..r)), l).prop_map(move |rows| {
            let mut g = BipartiteGraph::new(rows.len(), r);
            for (a, (degree, (b0, b1, b2, b3))) in rows.into_iter().enumerate() {
                for b in [b0, b1, b2, b3].into_iter().take(degree) {
                    g.add_edge(a, b);
                }
            }
            g
        })
    })
}

proptest! {
    /// Tentpole acceptance property: the new bitset Hopcroft–Karp and the
    /// existing augmenting-path matcher agree on the maximum matching size,
    /// and the bitset result is a structurally valid matching.
    #[test]
    fn bitset_hk_agrees_with_augmenting_path(g in arb_dtmb_graph()) {
        let bg = BitsetGraph::from_graph(&g);
        let bits = hopcroft_karp_bitset(&bg);
        let kuhn = augmenting_path_matching(&g);
        prop_assert_eq!(bits.len(), kuhn.len());
        prop_assert!(bits.is_valid_bitset(&bg));
    }

    /// The bitset matcher also agrees with the adjacency-list
    /// Hopcroft–Karp, and the graph conversion preserves the edge set.
    #[test]
    fn bitset_hk_agrees_with_list_hk(g in arb_dtmb_graph()) {
        let bg = BitsetGraph::from_graph(&g);
        prop_assert_eq!(bg.edge_count(), g.edge_count());
        for (a, b) in g.edges() {
            prop_assert!(bg.contains_edge(a, b));
        }
        prop_assert_eq!(
            hopcroft_karp_bitset(&bg).len(),
            hopcroft_karp(&g).len()
        );
    }

    /// The early-exit feasibility path answers exactly "matching size
    /// equals left count", and a `hall_infeasible` certificate is never
    /// issued for a feasible instance.
    #[test]
    fn covers_all_left_matches_full_solve(g in arb_dtmb_graph()) {
        let bg = BitsetGraph::from_graph(&g);
        let mut matcher = BitsetMatcher::new();
        let covered = matcher.covers_all_left(&bg);
        let size = augmenting_path_matching(&g).len();
        prop_assert_eq!(covered, size == g.left_count());
        if bg.hall_infeasible() {
            prop_assert!(!covered);
        }
    }

    /// Scratch reuse never changes answers: solving a second, different
    /// instance with the same matcher gives the same result as a fresh
    /// matcher.
    #[test]
    fn matcher_reuse_is_sound(a in arb_dtmb_graph(), b in arb_dtmb_graph()) {
        let (ba, bb) = (BitsetGraph::from_graph(&a), BitsetGraph::from_graph(&b));
        let mut reused = BitsetMatcher::new();
        let _ = reused.max_matching(&ba);
        let warm = reused.max_matching(&bb);
        let cold = hopcroft_karp_bitset(&bb);
        prop_assert_eq!(warm.len(), cold.len());
        prop_assert!(warm.is_valid_bitset(&bb));
    }
}
