//! Word-level SWAR kernels for the bit-parallel Monte-Carlo trial engine.
//!
//! The simulator's transposed ("bit-sliced") hot path evaluates **64
//! independent trials per `u64` word**: bit `L` of a cell's fault word is
//! the fault flag of trial lane `L` at that cell. This module provides the
//! lane-level primitives the higher layers build on:
//!
//! * [`LaneRngs`] — 64 xoshiro256++ generators in structure-of-arrays
//!   layout, each lane seeded exactly like
//!   `StdRng::seed_from_u64(seed)`, so a lane's draw stream is
//!   *bit-identical* to the scalar engine's per-trial RNG. On x86-64
//!   hosts with AVX2 the step/compare/pack kernels run as
//!   runtime-dispatched four-lane SIMD (with a batched lane-major sweep,
//!   [`LaneRngs::fill_ge`], that keeps RNG state in registers across a
//!   whole cell pass); every other host takes the portable SWAR loops,
//!   and both paths are held to the same scalar-stream tests.
//! * [`mantissa_threshold`] — converts a survival probability into an
//!   integer mantissa threshold such that the scalar comparison
//!   `rng.gen::<f64>() >= p` and the word comparison
//!   `(next_u64() >> 11) >= mantissa_threshold(p)` decide identically,
//!   with no floating-point in the sampling loop.
//! * [`LaneCounter`] — a bit-sliced saturating counter (one ripple-carry
//!   adder per fault word) that counts per-lane fault populations and
//!   answers "which lanes have at most `k` faults?" as a single mask,
//!   the classifier tier's Hall-bound retirement test.
//!
//! # Example
//!
//! ```
//! use dmfb_graph::words::{mantissa_threshold, LaneRngs, LANES};
//! use rand::{rngs::StdRng, Rng, SeedableRng};
//!
//! // Lane 3 of the SoA generator replays scalar seed 1234 exactly.
//! let seeds: Vec<u64> = (0..8).map(|i| 1000 + i as u64 * 78).collect();
//! let mut lanes = LaneRngs::new(&seeds);
//! let mut scalar = StdRng::seed_from_u64(seeds[3]);
//! let t = mantissa_threshold(0.95);
//! let word = lanes.next_ge(t);
//! let u: f64 = scalar.gen();
//! assert_eq!((word >> 3) & 1 == 1, u >= 0.95);
//! assert_eq!(LANES, 64);
//! ```

/// Number of trial lanes packed into one `u64` word.
pub const LANES: usize = 64;

/// AVX2 fast paths for the lane kernels, runtime-dispatched so the same
/// binary stays correct on any x86-64. Every function here computes
/// *bit-identically* the same result as its portable counterpart — the
/// stream tests in this module run against whichever path the host
/// selects, so the byte-identity contract covers both.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)] // `std::arch` intrinsics are `unsafe fn`; every call
                      // site is guarded by the `available()` runtime check.
mod x86 {
    use super::LANES;
    use std::arch::x86_64::{
        __m256i, _mm256_add_epi64, _mm256_castsi256_pd, _mm256_cmpgt_epi64, _mm256_loadu_si256,
        _mm256_movemask_pd, _mm256_or_si256, _mm256_set1_epi64x, _mm256_slli_epi64,
        _mm256_srli_epi64, _mm256_storeu_si256, _mm256_xor_si256,
    };

    /// Whether the AVX2 paths may be called (cached by `std_detect`).
    #[inline]
    pub fn available() -> bool {
        std::arch::is_x86_feature_detected!("avx2")
    }

    /// One lock-step xoshiro256++ update of four lanes starting at
    /// `lane`; returns the four `next_u64` results.
    ///
    /// # Safety
    ///
    /// Caller guarantees AVX2 and `lane + 4 <= LANES`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn step4(
        s0: &mut [u64; LANES],
        s1: &mut [u64; LANES],
        s2: &mut [u64; LANES],
        s3: &mut [u64; LANES],
        lane: usize,
    ) -> __m256i {
        let p0 = s0.as_mut_ptr().add(lane).cast::<__m256i>();
        let p1 = s1.as_mut_ptr().add(lane).cast::<__m256i>();
        let p2 = s2.as_mut_ptr().add(lane).cast::<__m256i>();
        let p3 = s3.as_mut_ptr().add(lane).cast::<__m256i>();
        let v0 = _mm256_loadu_si256(p0);
        let v1 = _mm256_loadu_si256(p1);
        let v2 = _mm256_loadu_si256(p2);
        let v3 = _mm256_loadu_si256(p3);
        // result = rotl(s0 + s3, 23) + s0 (rotates spelled shl|shr — AVX2
        // shift immediates are const generics, so no shared rotl helper).
        let sum = _mm256_add_epi64(v0, v3);
        let rot = _mm256_or_si256(_mm256_slli_epi64::<23>(sum), _mm256_srli_epi64::<41>(sum));
        let result = _mm256_add_epi64(rot, v0);
        let t = _mm256_slli_epi64::<17>(v1);
        let v2 = _mm256_xor_si256(v2, v0);
        let v3 = _mm256_xor_si256(v3, v1);
        let v1 = _mm256_xor_si256(v1, v2);
        let v0 = _mm256_xor_si256(v0, v3);
        let v2 = _mm256_xor_si256(v2, t);
        let v3 = _mm256_or_si256(_mm256_slli_epi64::<45>(v3), _mm256_srli_epi64::<19>(v3));
        _mm256_storeu_si256(p0, v0);
        _mm256_storeu_si256(p1, v1);
        _mm256_storeu_si256(p2, v2);
        _mm256_storeu_si256(p3, v3);
        result
    }

    /// Fused step + mantissa compare + pack: advances all 64 lanes one
    /// draw and returns the `(next_u64() >> 11) >= threshold` fault word
    /// without materialising mantissa or bit arrays. The comparison is a
    /// signed vector compare — safe because 53-bit mantissas and
    /// thresholds (`<= 2^53`) never reach the sign bit — and the pack is
    /// a sign-bit `movemask` per four lanes.
    ///
    /// # Safety
    ///
    /// Caller guarantees AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub unsafe fn step_ge(
        s0: &mut [u64; LANES],
        s1: &mut [u64; LANES],
        s2: &mut [u64; LANES],
        s3: &mut [u64; LANES],
        threshold: u64,
    ) -> u64 {
        let t = _mm256_set1_epi64x(threshold as i64);
        let mut word = 0u64;
        let mut lane = 0;
        while lane < LANES {
            let result = step4(s0, s1, s2, s3, lane);
            let m = _mm256_srli_epi64::<11>(result);
            // Sign bit of each lane = (m < t); invert for (m >= t).
            let lt = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(t, m)));
            word |= u64::from(!lt as u32 & 0xF) << lane;
            lane += 4;
        }
        word
    }

    /// Vectorised step + mantissa shift: advances all 64 lanes one draw
    /// and writes the 53-bit mantissas to `out`.
    ///
    /// # Safety
    ///
    /// Caller guarantees AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub unsafe fn step_mantissas(
        s0: &mut [u64; LANES],
        s1: &mut [u64; LANES],
        s2: &mut [u64; LANES],
        s3: &mut [u64; LANES],
        out: &mut [u64; LANES],
    ) {
        let mut lane = 0;
        while lane < LANES {
            let result = step4(s0, s1, s2, s3, lane);
            let m = _mm256_srli_epi64::<11>(result);
            _mm256_storeu_si256(out.as_mut_ptr().add(lane).cast::<__m256i>(), m);
            lane += 4;
        }
    }

    /// Batched fused sampler: one `(next_u64() >> 11) >= threshold` fault
    /// word per `out` slot, equivalent to `out.len()` successive
    /// [`step_ge`] calls but loop-inverted — lanes outer, cells inner —
    /// so each lane group's RNG state stays in registers across the whole
    /// cell sweep instead of round-tripping through memory per cell. Two
    /// 4-lane groups advance per pass to keep both dependency chains in
    /// flight.
    ///
    /// # Safety
    ///
    /// Caller guarantees AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub unsafe fn fill_ge(
        s0: &mut [u64; LANES],
        s1: &mut [u64; LANES],
        s2: &mut [u64; LANES],
        s3: &mut [u64; LANES],
        threshold: u64,
        out: &mut [u64],
    ) {
        #[inline]
        #[target_feature(enable = "avx2")]
        unsafe fn step_reg(v: &mut [__m256i; 4]) -> __m256i {
            let sum = _mm256_add_epi64(v[0], v[3]);
            let rot = _mm256_or_si256(_mm256_slli_epi64::<23>(sum), _mm256_srli_epi64::<41>(sum));
            let result = _mm256_add_epi64(rot, v[0]);
            let t = _mm256_slli_epi64::<17>(v[1]);
            v[2] = _mm256_xor_si256(v[2], v[0]);
            v[3] = _mm256_xor_si256(v[3], v[1]);
            v[1] = _mm256_xor_si256(v[1], v[2]);
            v[0] = _mm256_xor_si256(v[0], v[3]);
            v[2] = _mm256_xor_si256(v[2], t);
            v[3] = _mm256_or_si256(_mm256_slli_epi64::<45>(v[3]), _mm256_srli_epi64::<19>(v[3]));
            result
        }
        #[inline]
        #[target_feature(enable = "avx2")]
        unsafe fn load4(
            s0: &[u64; LANES],
            s1: &[u64; LANES],
            s2: &[u64; LANES],
            s3: &[u64; LANES],
            lane: usize,
        ) -> [__m256i; 4] {
            [
                _mm256_loadu_si256(s0.as_ptr().add(lane).cast::<__m256i>()),
                _mm256_loadu_si256(s1.as_ptr().add(lane).cast::<__m256i>()),
                _mm256_loadu_si256(s2.as_ptr().add(lane).cast::<__m256i>()),
                _mm256_loadu_si256(s3.as_ptr().add(lane).cast::<__m256i>()),
            ]
        }
        #[inline]
        #[target_feature(enable = "avx2")]
        unsafe fn store4(
            v: &[__m256i; 4],
            s0: &mut [u64; LANES],
            s1: &mut [u64; LANES],
            s2: &mut [u64; LANES],
            s3: &mut [u64; LANES],
            lane: usize,
        ) {
            _mm256_storeu_si256(s0.as_mut_ptr().add(lane).cast::<__m256i>(), v[0]);
            _mm256_storeu_si256(s1.as_mut_ptr().add(lane).cast::<__m256i>(), v[1]);
            _mm256_storeu_si256(s2.as_mut_ptr().add(lane).cast::<__m256i>(), v[2]);
            _mm256_storeu_si256(s3.as_mut_ptr().add(lane).cast::<__m256i>(), v[3]);
        }
        let t = _mm256_set1_epi64x(threshold as i64);
        for w in out.iter_mut() {
            *w = 0;
        }
        let mut lane = 0;
        while lane < LANES {
            let mut a = load4(s0, s1, s2, s3, lane);
            let mut b = load4(s0, s1, s2, s3, lane + 4);
            for w in out.iter_mut() {
                let ra = _mm256_srli_epi64::<11>(step_reg(&mut a));
                let rb = _mm256_srli_epi64::<11>(step_reg(&mut b));
                let lt_a = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(t, ra)));
                let lt_b = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(t, rb)));
                let bits = u64::from(!lt_a as u32 & 0xF) | (u64::from(!lt_b as u32 & 0xF) << 4);
                *w |= bits << lane;
            }
            store4(&a, s0, s1, s2, s3, lane);
            store4(&b, s0, s1, s2, s3, lane + 4);
            lane += 8;
        }
    }

    /// Vectorised re-threshold of a stored mantissa column (the grid-mode
    /// kernel behind [`super::pack_ge`]).
    ///
    /// # Safety
    ///
    /// Caller guarantees AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub unsafe fn pack_ge(mantissas: &[u64; LANES], threshold: u64) -> u64 {
        let t = _mm256_set1_epi64x(threshold as i64);
        let mut word = 0u64;
        let mut lane = 0;
        while lane < LANES {
            let m = _mm256_loadu_si256(mantissas.as_ptr().add(lane).cast::<__m256i>());
            let lt = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(t, m)));
            word |= u64::from(!lt as u32 & 0xF) << lane;
            lane += 4;
        }
        word
    }
}

/// `2^53` as an `f64`: the scale factor of the vendored `rand`'s
/// 53-bit-mantissa uniform construction.
const MANTISSA_SCALE: f64 = 9_007_199_254_740_992.0;

/// All-ones mask over the first `lanes` lanes.
///
/// # Panics
///
/// Panics if `lanes > 64`.
#[must_use]
pub fn lane_mask(lanes: usize) -> u64 {
    assert!(lanes <= LANES, "at most {LANES} lanes per word");
    if lanes == LANES {
        u64::MAX
    } else {
        (1u64 << lanes) - 1
    }
}

/// Converts a survival probability into the integer mantissa threshold of
/// the equivalent fault test.
///
/// The scalar engine draws `u = (next_u64() >> 11) as f64 / 2^53` and
/// declares a cell faulty iff `u >= p`. Both the mantissa-to-float
/// conversion and the power-of-two scaling are exact in `f64`, so with
/// `m = next_u64() >> 11`:
///
/// `u >= p  ⟺  m >= p · 2^53  ⟺  m >= ⌈p · 2^53⌉`
///
/// (`p · 2^53` is itself exact — scaling by a power of two never rounds).
/// The returned threshold therefore reproduces the scalar verdict
/// *bit-for-bit* using only integer compares. Edge cases: `p = 0` maps to
/// `0` (every draw faults, matching `u >= 0`); `p = 1` maps to `2^53`,
/// which no 53-bit mantissa reaches (matching `u < 1`).
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
#[must_use]
pub fn mantissa_threshold(p: f64) -> u64 {
    assert!((0.0..=1.0).contains(&p), "p={p} out of range [0,1]");
    (p * MANTISSA_SCALE).ceil() as u64
}

/// Packs the per-lane comparisons `mantissas[L] >= threshold` into one
/// fault word (lane `L` at bit `L`) — re-thresholding a stored transposed
/// draw, the kernel behind common-random-number grid sweeps where one
/// mantissa column is tested against many survival probabilities.
#[must_use]
#[allow(unsafe_code)] // AVX2 dispatch; guarded by `x86::available()`.
pub fn pack_ge(mantissas: &[u64; LANES], threshold: u64) -> u64 {
    #[cfg(target_arch = "x86_64")]
    if x86::available() {
        // SAFETY: AVX2 presence just checked.
        return unsafe { x86::pack_ge(mantissas, threshold) };
    }
    pack_ge_portable(mantissas, threshold)
}

/// Portable SWAR body of [`pack_ge`] — also the cross-check reference the
/// tests hold the dispatched paths to.
fn pack_ge_portable(mantissas: &[u64; LANES], threshold: u64) -> u64 {
    let mut bits = [0u64; LANES];
    for lane in 0..LANES {
        bits[lane] = u64::from(mantissas[lane] >= threshold);
    }
    // Four independent accumulators keep the pack off one serial OR chain.
    let (mut w0, mut w1, mut w2, mut w3) = (0u64, 0u64, 0u64, 0u64);
    let mut lane = 0;
    while lane < LANES {
        w0 |= bits[lane] << lane;
        w1 |= bits[lane + 1] << (lane + 1);
        w2 |= bits[lane + 2] << (lane + 2);
        w3 |= bits[lane + 3] << (lane + 3);
        lane += 4;
    }
    (w0 | w1) | (w2 | w3)
}

/// SplitMix64 stream used by `StdRng::seed_from_u64` to expand one `u64`
/// into the four xoshiro256++ state words (kept in lock-step with the
/// vendored `rand`).
fn splitmix_expand(seed: u64) -> [u64; 4] {
    let mut state = seed;
    let mut out = [0u64; 4];
    for word in &mut out {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        *word = z ^ (z >> 31);
    }
    // xoshiro must not start from the all-zero state (mirrors
    // `StdRng::from_seed`; unreachable from SplitMix64 in practice).
    if out == [0; 4] {
        out = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
    }
    out
}

/// 64 xoshiro256++ generators in structure-of-arrays layout — one lane
/// per Monte-Carlo trial.
///
/// Each lane `L` seeded with `seeds[L]` produces exactly the `next_u64`
/// stream of `StdRng::seed_from_u64(seeds[L])`, which is what makes the
/// block engine byte-identical to the scalar engine: a trial's verdict
/// depends only on its seed, never on which lane or block evaluated it.
/// Lanes beyond the seed slice are seeded with `0` and advanced in
/// lock-step; callers mask their output with [`lane_mask`].
#[derive(Clone, Debug)]
pub struct LaneRngs {
    s0: [u64; LANES],
    s1: [u64; LANES],
    s2: [u64; LANES],
    s3: [u64; LANES],
}

impl LaneRngs {
    /// Creates 64 lanes, seeding lane `L` from `seeds[L]` exactly like
    /// `StdRng::seed_from_u64`.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 seeds are supplied.
    #[must_use]
    pub fn new(seeds: &[u64]) -> Self {
        let mut rngs = LaneRngs {
            s0: [0; LANES],
            s1: [0; LANES],
            s2: [0; LANES],
            s3: [0; LANES],
        };
        rngs.reseed(seeds);
        rngs
    }

    /// Reseeds all lanes in place (lane `L` from `seeds[L]`, the rest
    /// from seed `0`), reusing the state arrays across blocks.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 seeds are supplied.
    pub fn reseed(&mut self, seeds: &[u64]) {
        assert!(seeds.len() <= LANES, "at most {LANES} lanes per word");
        for lane in 0..LANES {
            let seed = seeds.get(lane).copied().unwrap_or(0);
            let s = splitmix_expand(seed);
            self.s0[lane] = s[0];
            self.s1[lane] = s[1];
            self.s2[lane] = s[2];
            self.s3[lane] = s[3];
        }
    }

    /// Advances every lane one step and writes the raw `next_u64` outputs
    /// to `out` (lane `L` at `out[L]`).
    pub fn next_raw(&mut self, out: &mut [u64; LANES]) {
        self.step(out);
    }

    /// Advances every lane one step and writes the 53-bit mantissas
    /// (`next_u64() >> 11`) to `out` — the transposed uniform draw behind
    /// common-random-number grids.
    #[allow(unsafe_code)] // AVX2 dispatch; guarded by `x86::available()`.
    pub fn next_mantissas(&mut self, out: &mut [u64; LANES]) {
        #[cfg(target_arch = "x86_64")]
        if x86::available() {
            // SAFETY: AVX2 presence just checked.
            unsafe {
                x86::step_mantissas(&mut self.s0, &mut self.s1, &mut self.s2, &mut self.s3, out);
            }
            return;
        }
        self.step(out);
        for m in out.iter_mut() {
            *m >>= 11;
        }
    }

    /// Advances every lane one step and packs the per-lane fault bits
    /// `(next_u64() >> 11) >= threshold` into one word (lane `L` at
    /// bit `L`) — one transposed Bernoulli draw across 64 trials.
    ///
    /// This is the block sampler's innermost call (once per cell per
    /// 64-trial group); on AVX2 hosts it runs fused — step, mantissa
    /// shift, compare and sign-bit pack — without materialising either
    /// intermediate array.
    #[must_use]
    #[allow(unsafe_code)] // AVX2 dispatch; guarded by `x86::available()`.
    pub fn next_ge(&mut self, threshold: u64) -> u64 {
        #[cfg(target_arch = "x86_64")]
        if x86::available() {
            // SAFETY: AVX2 presence just checked.
            return unsafe {
                x86::step_ge(
                    &mut self.s0,
                    &mut self.s1,
                    &mut self.s2,
                    &mut self.s3,
                    threshold,
                )
            };
        }
        let mut mantissas = [0u64; LANES];
        self.next_mantissas(&mut mantissas);
        pack_ge(&mantissas, threshold)
    }

    /// Draws one fault word per `out` slot — exactly `out.len()`
    /// successive [`LaneRngs::next_ge`] draws, one per cell in slice
    /// order. This is the survival sampler's batched form: on AVX2 hosts
    /// the loop runs lane-major so each lane group's RNG state lives in
    /// registers across the entire cell sweep (the per-cell form reloads
    /// and re-stores all four state arrays every draw).
    #[allow(unsafe_code)] // AVX2 dispatch; guarded by `x86::available()`.
    pub fn fill_ge(&mut self, threshold: u64, out: &mut [u64]) {
        #[cfg(target_arch = "x86_64")]
        if x86::available() {
            // SAFETY: AVX2 presence just checked.
            unsafe {
                x86::fill_ge(
                    &mut self.s0,
                    &mut self.s1,
                    &mut self.s2,
                    &mut self.s3,
                    threshold,
                    out,
                );
            }
            return;
        }
        for word in out.iter_mut() {
            *word = self.next_ge(threshold);
        }
    }

    /// The xoshiro256++ state of `lane` as `[s0, s1, s2, s3]`.
    ///
    /// Feeding the little-endian bytes of this array to
    /// `StdRng::from_seed` yields a scalar generator that continues the
    /// lane's stream exactly — how the operational engine hands a lane's
    /// mid-stream RNG to scalar code (e.g. wear-model draws) without
    /// replaying the cell draws. Mid-stream states are never all-zero
    /// (the all-zero state is an isolated fixed point xoshiro cannot
    /// reach), so `from_seed`'s zero-escape never fires.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= 64`.
    #[must_use]
    pub fn state(&self, lane: usize) -> [u64; 4] {
        assert!(lane < LANES, "lane {lane} out of range");
        [self.s0[lane], self.s1[lane], self.s2[lane], self.s3[lane]]
    }

    /// One lock-step xoshiro256++ update of all 64 lanes; `out[L]` gets
    /// lane `L`'s `next_u64` result.
    fn step(&mut self, out: &mut [u64; LANES]) {
        for (lane, slot) in out.iter_mut().enumerate() {
            let result = self.s0[lane]
                .wrapping_add(self.s3[lane])
                .rotate_left(23)
                .wrapping_add(self.s0[lane]);
            let t = self.s1[lane] << 17;
            self.s2[lane] ^= self.s0[lane];
            self.s3[lane] ^= self.s1[lane];
            self.s1[lane] ^= self.s2[lane];
            self.s0[lane] ^= self.s3[lane];
            self.s2[lane] ^= t;
            self.s3[lane] = self.s3[lane].rotate_left(45);
            *slot = result;
        }
    }
}

/// Bit-sliced saturating lane counter: counts, per lane, how many fault
/// words had that lane's bit set.
///
/// `planes[i]` holds bit `i` of every lane's count; adding a fault word
/// is one ripple-carry pass, and the Hall-bound test "count ≤ k" is a
/// word-parallel comparator — no per-lane extraction anywhere. Counts
/// that exceed the constructed capacity saturate into an overflow plane,
/// which simply keeps those lanes out of every `≤ k` mask.
///
/// # Example
///
/// ```
/// use dmfb_graph::words::LaneCounter;
///
/// let mut counter = LaneCounter::new(3);
/// counter.add(0b1011); // lanes 0, 1, 3 fault once
/// counter.add(0b0011); // lanes 0, 1 fault again
/// assert_eq!(counter.le_mask(1) & 0xF, 0b1100); // lanes 2 (0) and 3 (1)
/// assert_eq!(counter.le_mask(2) & 0xF, 0b1111);
/// ```
#[derive(Clone, Debug)]
pub struct LaneCounter {
    /// `planes[i]` = bit `i` of each lane's count, lanes across the word.
    planes: [u64; 8],
    /// Lanes whose count exceeded `2^bits − 1`.
    overflow: u64,
    /// Number of live planes: counts up to `2^bits − 1` are exact.
    bits: usize,
}

impl LaneCounter {
    /// Creates a counter that can distinguish counts `0 ..= max_count`
    /// exactly (anything larger saturates).
    ///
    /// # Panics
    ///
    /// Panics if `max_count > 255`.
    #[must_use]
    pub fn new(max_count: usize) -> Self {
        assert!(max_count <= 255, "lane counter capacity is 255");
        let bits = (usize::BITS - max_count.leading_zeros()).max(1) as usize;
        LaneCounter {
            planes: [0; 8],
            overflow: 0,
            bits,
        }
    }

    /// Resets every lane's count to zero.
    pub fn reset(&mut self) {
        self.planes = [0; 8];
        self.overflow = 0;
    }

    /// Adds one to every lane whose bit is set in `word` (one ripple-carry
    /// pass over the bit planes).
    pub fn add(&mut self, word: u64) {
        let mut carry = word;
        for plane in self.planes.iter_mut().take(self.bits) {
            let sum = *plane ^ carry;
            carry &= *plane;
            *plane = sum;
        }
        self.overflow |= carry;
    }

    /// Mask of lanes whose count is at most `bound` (word-parallel
    /// comparator over the bit planes; overflowed lanes never qualify).
    ///
    /// # Panics
    ///
    /// Panics if `bound` exceeds the constructed capacity.
    #[must_use]
    pub fn le_mask(&self, bound: u64) -> u64 {
        assert!(
            bound < 1u64 << self.bits,
            "bound {bound} exceeds counter capacity"
        );
        let mut greater = self.overflow;
        let mut equal = u64::MAX;
        for i in (0..self.bits).rev() {
            let bound_bit = if (bound >> i) & 1 == 1 { u64::MAX } else { 0 };
            greater |= equal & self.planes[i] & !bound_bit;
            equal &= !(self.planes[i] ^ bound_bit);
        }
        !greater
    }

    /// The exact count of `lane`, or `None` if it saturated.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= 64`.
    #[must_use]
    pub fn count(&self, lane: usize) -> Option<u64> {
        assert!(lane < LANES, "lane {lane} out of range");
        if (self.overflow >> lane) & 1 == 1 {
            return None;
        }
        let mut count = 0u64;
        for i in 0..self.bits {
            count |= ((self.planes[i] >> lane) & 1) << i;
        }
        Some(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, RngCore, SeedableRng};

    #[test]
    fn lanes_replay_scalar_streams_exactly() {
        let seeds: Vec<u64> = (0..64).map(|i| 0xABCD_0000 + i * 977).collect();
        let mut lanes = LaneRngs::new(&seeds);
        let mut scalars: Vec<StdRng> = seeds.iter().map(|&s| StdRng::seed_from_u64(s)).collect();
        let mut raw = [0u64; LANES];
        for _ in 0..100 {
            lanes.next_raw(&mut raw);
            for (lane, rng) in scalars.iter_mut().enumerate() {
                assert_eq!(raw[lane], rng.next_u64());
            }
        }
    }

    #[test]
    fn ge_words_match_scalar_float_compare() {
        let seeds: Vec<u64> = (0..37).map(|i| 31 + i * 17).collect();
        for &p in &[0.0, 1e-9, 0.25, 0.5, 0.95, 0.99, 1.0 - 1e-12, 1.0] {
            let mut lanes = LaneRngs::new(&seeds);
            let mut scalars: Vec<StdRng> =
                seeds.iter().map(|&s| StdRng::seed_from_u64(s)).collect();
            let t = mantissa_threshold(p);
            for _ in 0..50 {
                let word = lanes.next_ge(t);
                for (lane, rng) in scalars.iter_mut().enumerate() {
                    let u: f64 = rng.gen();
                    assert_eq!((word >> lane) & 1 == 1, u >= p, "p={p} lane={lane}");
                }
            }
        }
    }

    #[test]
    fn mantissas_match_scalar_uniforms() {
        let seeds = [7u64, 8, 9];
        let mut lanes = LaneRngs::new(&seeds);
        let mut scalars: Vec<StdRng> = seeds.iter().map(|&s| StdRng::seed_from_u64(s)).collect();
        let mut m = [0u64; LANES];
        for _ in 0..20 {
            lanes.next_mantissas(&mut m);
            for (lane, rng) in scalars.iter_mut().enumerate() {
                let u: f64 = rng.gen();
                assert_eq!(m[lane] as f64 / MANTISSA_SCALE, u, "lane={lane}");
            }
        }
    }

    #[test]
    fn state_resumes_as_scalar_rng() {
        let seeds = [0x51u64, 0x52, 0x53];
        let mut lanes = LaneRngs::new(&seeds);
        let mut m = [0u64; LANES];
        for _ in 0..13 {
            lanes.next_mantissas(&mut m);
        }
        for (lane, &seed) in seeds.iter().enumerate() {
            // Scalar replay: 13 draws, then compare the continuation.
            let mut reference = StdRng::seed_from_u64(seed);
            for _ in 0..13 {
                let _: f64 = reference.gen();
            }
            let state = lanes.state(lane);
            let mut bytes = [0u8; 32];
            for (chunk, word) in bytes.chunks_mut(8).zip(state) {
                chunk.copy_from_slice(&word.to_le_bytes());
            }
            let mut resumed = StdRng::from_seed(bytes);
            for _ in 0..10 {
                assert_eq!(resumed.next_u64(), reference.next_u64());
            }
        }
    }

    #[test]
    fn threshold_edge_cases() {
        assert_eq!(mantissa_threshold(0.0), 0);
        assert_eq!(mantissa_threshold(1.0), 1u64 << 53);
        // Monotone in p.
        let mut last = 0;
        for i in 0..=100 {
            let t = mantissa_threshold(f64::from(i) / 100.0);
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn threshold_rejects_out_of_range() {
        let _ = mantissa_threshold(1.5);
    }

    #[test]
    fn counter_counts_and_saturates() {
        let mut counter = LaneCounter::new(5);
        // Lane L's bit is set in round r iff L <= 63 - r, so lane L
        // accumulates min(9, 64 - L) counts.
        for round in 0..9u64 {
            counter.add(u64::MAX >> round);
        }
        // Lane 63 faulted once (round 0 only); lane 55 faulted 9 times
        // (saturates past capacity 5 -> bits 3 -> exact to 7).
        assert_eq!(counter.count(63), Some(1));
        assert_eq!(counter.count(62), Some(2));
        assert_eq!(counter.count(55), None);
        assert_eq!(counter.le_mask(1) >> 63, 1);
        assert_eq!((counter.le_mask(1) >> 62) & 1, 0);
        assert_eq!((counter.le_mask(5) >> 59) & 1, 1); // 5 faults
        assert_eq!((counter.le_mask(4) >> 59) & 1, 0);
        counter.reset();
        assert_eq!(counter.count(0), Some(0));
        assert_eq!(counter.le_mask(0), u64::MAX);
    }

    #[test]
    fn counter_matches_popcount_reference() {
        let mut counter = LaneCounter::new(12);
        let mut reference = [0u32; LANES];
        let mut rng = StdRng::seed_from_u64(99);
        let mut words = Vec::new();
        for _ in 0..12 {
            let w: u64 = rng.gen();
            counter.add(w);
            words.push(w);
            for (lane, r) in reference.iter_mut().enumerate() {
                *r += ((w >> lane) & 1) as u32;
            }
        }
        for bound in 0..=12u64 {
            let mask = counter.le_mask(bound);
            for (lane, &r) in reference.iter().enumerate() {
                assert_eq!(
                    (mask >> lane) & 1 == 1,
                    u64::from(r) <= bound,
                    "lane={lane} bound={bound}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn counter_rejects_overwide_bound() {
        let _ = LaneCounter::new(3).le_mask(8);
    }

    #[test]
    fn pack_matches_per_lane_compare() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut m = [0u64; LANES];
        for v in m.iter_mut() {
            *v = rng.next_u64() >> 11;
        }
        for &t in &[0u64, 1, 1 << 30, 1 << 52, 1 << 53] {
            let word = pack_ge(&m, t);
            for (lane, &v) in m.iter().enumerate() {
                assert_eq!((word >> lane) & 1 == 1, v >= t, "t={t} lane={lane}");
            }
        }
    }

    #[test]
    fn fill_ge_matches_per_cell_draws() {
        // The batched (lane-major) sampler must equal the per-cell draw
        // loop word for word and leave identical lane states, at every
        // sweep length, threshold and starting phase.
        let seeds: Vec<u64> = (0..64).map(|i| 0xF1_11 + i * 71).collect();
        for &cells in &[0usize, 1, 7, 160, 333] {
            for &p in &[0.0, 0.5, 0.99, 1.0] {
                let t = mantissa_threshold(p);
                let mut batched = LaneRngs::new(&seeds);
                let mut reference = LaneRngs::new(&seeds);
                // Offset the phase so non-fresh states are covered too.
                let _ = batched.next_ge(t);
                let _ = reference.next_ge(t);
                let mut words = vec![u64::MAX; cells];
                batched.fill_ge(t, &mut words);
                for (cell, &word) in words.iter().enumerate() {
                    assert_eq!(
                        word,
                        reference.next_ge(t),
                        "cells={cells} p={p} cell={cell}"
                    );
                }
                for lane in 0..LANES {
                    assert_eq!(batched.state(lane), reference.state(lane), "lane={lane}");
                }
            }
        }
    }

    #[test]
    fn dispatched_paths_match_portable_reference() {
        // Whatever path `next_ge`/`next_mantissas`/`pack_ge` dispatch to
        // (AVX2 or portable), the results must equal the portable scalar
        // pipeline run on an identical clone.
        let seeds: Vec<u64> = (0..64).map(|i| 0x7A57 + i * 101).collect();
        let mut fused = LaneRngs::new(&seeds);
        let mut reference = LaneRngs::new(&seeds);
        let mut m = [0u64; LANES];
        let mut raw = [0u64; LANES];
        for round in 0..200u64 {
            let t = (round * 0x4000_0000_0000) % ((1 << 53) + 1);
            let word = fused.next_ge(t);
            reference.next_raw(&mut raw);
            for (dst, &r) in m.iter_mut().zip(&raw) {
                *dst = r >> 11;
            }
            assert_eq!(word, pack_ge_portable(&m, t), "round={round}");
            assert_eq!(pack_ge(&m, t), pack_ge_portable(&m, t), "round={round}");
            fused.next_mantissas(&mut raw);
            reference.next_raw(&mut m);
            for v in m.iter_mut() {
                *v >>= 11;
            }
            assert_eq!(raw, m, "round={round}");
        }
        // The states must stay in lock-step too.
        for lane in 0..LANES {
            assert_eq!(fused.state(lane), reference.state(lane), "lane={lane}");
        }
    }

    #[test]
    fn lane_mask_widths() {
        assert_eq!(lane_mask(0), 0);
        assert_eq!(lane_mask(1), 1);
        assert_eq!(lane_mask(64), u64::MAX);
    }
}
