//! Bipartite graph `BG(A, B, E)` between faulty and spare cells.

use std::fmt;

/// A bipartite graph with `left_count` nodes on the left side (the paper's
/// set `A`: faulty primary cells) and `right_count` nodes on the right side
/// (set `B`: fault-free spare cells).
///
/// Nodes are dense `usize` indices on each side; callers keep their own
/// index ↔ cell mappings (see `dmfb-reconfig`). Parallel edges are ignored.
///
/// # Example
///
/// ```
/// use dmfb_graph::BipartiteGraph;
///
/// let mut g = BipartiteGraph::new(1, 2);
/// g.add_edge(0, 0);
/// g.add_edge(0, 1);
/// assert_eq!(g.degree_left(0), 2);
/// assert_eq!(g.edge_count(), 2);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct BipartiteGraph {
    adj_left: Vec<Vec<usize>>,
    right_count: usize,
    edges: usize,
}

impl fmt::Debug for BipartiteGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BipartiteGraph(left={}, right={}, edges={})",
            self.adj_left.len(),
            self.right_count,
            self.edges
        )
    }
}

impl BipartiteGraph {
    /// Creates a graph with the given side sizes and no edges.
    #[must_use]
    pub fn new(left_count: usize, right_count: usize) -> Self {
        BipartiteGraph {
            adj_left: vec![Vec::new(); left_count],
            right_count,
            edges: 0,
        }
    }

    /// Adds an (undirected) edge between left node `a` and right node `b`.
    /// Duplicate edges are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        assert!(a < self.adj_left.len(), "left node {a} out of range");
        assert!(b < self.right_count, "right node {b} out of range");
        if !self.adj_left[a].contains(&b) {
            self.adj_left[a].push(b);
            self.edges += 1;
        }
    }

    /// Number of left-side nodes (`|A|`).
    #[must_use]
    pub fn left_count(&self) -> usize {
        self.adj_left.len()
    }

    /// Number of right-side nodes (`|B|`).
    #[must_use]
    pub fn right_count(&self) -> usize {
        self.right_count
    }

    /// Number of edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// The right-side neighbours of left node `a`, in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    #[must_use]
    pub fn neighbors(&self, a: usize) -> &[usize] {
        &self.adj_left[a]
    }

    /// Degree of left node `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    #[must_use]
    pub fn degree_left(&self, a: usize) -> usize {
        self.adj_left[a].len()
    }

    /// Whether any left node has no neighbours at all (such a node can never
    /// be matched — e.g. a faulty cell with all adjacent spares failed).
    #[must_use]
    pub fn has_isolated_left(&self) -> bool {
        self.adj_left.iter().any(Vec::is_empty)
    }

    /// Iterates all edges as `(left, right)` pairs in deterministic order.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adj_left
            .iter()
            .enumerate()
            .flat_map(|(a, nbrs)| nbrs.iter().map(move |b| (a, *b)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_edges() {
        let mut g = BipartiteGraph::new(3, 2);
        g.add_edge(0, 0);
        g.add_edge(0, 1);
        g.add_edge(2, 1);
        assert_eq!(g.left_count(), 3);
        assert_eq!(g.right_count(), 2);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.neighbors(0), &[0, 1]);
        assert_eq!(g.degree_left(1), 0);
        assert!(g.has_isolated_left());
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 0), (0, 1), (2, 1)]);
    }

    #[test]
    fn duplicate_edges_ignored() {
        let mut g = BipartiteGraph::new(1, 1);
        g.add_edge(0, 0);
        g.add_edge(0, 0);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_left() {
        let mut g = BipartiteGraph::new(1, 1);
        g.add_edge(1, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_right() {
        let mut g = BipartiteGraph::new(1, 1);
        g.add_edge(0, 1);
    }

    #[test]
    fn empty_graph_no_isolated() {
        let g = BipartiteGraph::new(0, 5);
        assert!(!g.has_isolated_left());
        assert_eq!(g.edge_count(), 0);
    }
}
