//! Disjoint-set forest (union-find).
//!
//! Used by the defect subsystem to model *shorts between adjacent
//! electrodes*: shorted electrodes "effectively form one longer electrode",
//! i.e. an equivalence class of cells that fails together.

/// A disjoint-set forest over `0..len` with path compression and union by
/// rank.
///
/// # Example
///
/// ```
/// use dmfb_graph::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(0, 2));
/// assert_eq!(uf.component_count(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `len` singleton sets.
    #[must_use]
    pub fn new(len: usize) -> Self {
        UnionFind {
            parent: (0..len).collect(),
            rank: vec![0; len],
            components: len,
        }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The canonical representative of the set containing `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x >= len`.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets containing `a` and `b`; returns `true` if they were
    /// previously disjoint.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        self.components -= 1;
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Whether `a` and `b` belong to the same set.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets.
    #[must_use]
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Members of the set containing `x`, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `x >= len`.
    pub fn component_of(&mut self, x: usize) -> Vec<usize> {
        let root = self.find(x);
        (0..self.len()).filter(|&i| self.find(i) == root).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.component_count(), 5);
        for i in 0..5 {
            assert_eq!(uf.find(i), i);
        }
        assert!(!uf.is_empty());
        assert!(UnionFind::new(0).is_empty());
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0), "already merged");
        assert!(uf.union(0, 2));
        assert_eq!(uf.component_count(), 3);
        assert!(uf.connected(1, 3));
        assert!(!uf.connected(0, 4));
    }

    #[test]
    fn component_members() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 2);
        uf.union(2, 4);
        assert_eq!(uf.component_of(4), vec![0, 2, 4]);
        assert_eq!(uf.component_of(1), vec![1]);
    }

    #[test]
    fn transitive_chain() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.component_count(), 1);
        assert!(uf.connected(0, 99));
    }
}
