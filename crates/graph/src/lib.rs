//! Bipartite matching and graph utilities for biochip reconfiguration.
//!
//! The paper decides whether a defect pattern can be tolerated by building a
//! bipartite graph `BG(A, B, E)` — `A` the faulty primary cells, `B` the
//! fault-free spare cells, an edge when the two cells are physically
//! adjacent — and computing a *maximal matching*: "If this maximal matching
//! covers all nodes in A, it implies that all faulty cells can be replaced
//! by their adjacent fault-free spare cells through local reconfiguration."
//!
//! This crate provides:
//!
//! * [`BipartiteGraph`] — the adjacency structure,
//! * [`BitsetGraph`] / [`BitsetMatcher`] / [`hopcroft_karp_bitset`] — a
//!   `u64`-word bitset adjacency layout and an allocation-free
//!   Hopcroft–Karp over it, with a Hall-violation early exit; this is the
//!   Monte-Carlo hot path,
//! * [`hopcroft_karp`] — `O(E √V)` maximum matching (the production path),
//! * [`augmenting_path_matching`] — the simple Hungarian-style matcher used
//!   as a cross-check oracle in tests and ablation benches,
//! * [`hall_violation`] — a Hall-theorem deficiency witness explaining *why*
//!   a defect pattern is untolerable,
//! * [`UnionFind`] — used to model shorted-electrode clusters,
//! * [`Matching`] — a validated matching with coverage queries,
//! * [`words`] — word-level SWAR kernels for the transposed
//!   64-trials-per-word Monte-Carlo engine: lane-parallel xoshiro256++
//!   sampling ([`words::LaneRngs`]) and bit-sliced popcount
//!   classification ([`words::LaneCounter`]).
//!
//! # Example
//!
//! ```
//! use dmfb_graph::{BipartiteGraph, hopcroft_karp};
//!
//! // Two faulty cells, two spares; fault 0 can use either spare,
//! // fault 1 only spare 1.
//! let mut g = BipartiteGraph::new(2, 2);
//! g.add_edge(0, 0);
//! g.add_edge(0, 1);
//! g.add_edge(1, 1);
//! let m = hopcroft_karp(&g);
//! assert_eq!(m.len(), 2);
//! assert!(m.covers_all_left(&g));
//! ```

// Unsafe is denied crate-wide and allowed back in exactly one place: the
// runtime-dispatched AVX2 kernels in `words::x86`, where `std::arch`
// intrinsics are unavoidably `unsafe fn`. Everything else stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod bipartite;
mod bitset;
mod hall;
mod matching;
mod union_find;
pub mod words;

pub use bipartite::BipartiteGraph;
pub use bitset::{hopcroft_karp_bitset, BitsetGraph, BitsetMatcher};
pub use hall::{hall_violation, HallViolation};
pub use matching::{augmenting_path_matching, hopcroft_karp, Matching};
pub use union_find::UnionFind;
