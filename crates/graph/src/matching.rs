//! Maximum bipartite matching: Hopcroft–Karp and a simple oracle.

use crate::BipartiteGraph;
use std::collections::VecDeque;

/// A matching in a bipartite graph: a set of edges no two of which share a
/// node. Produced by [`hopcroft_karp`] or [`augmenting_path_matching`];
/// always *maximum* (largest possible cardinality), which is in particular
/// maximal in the paper's sense.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Matching {
    /// `pair_left[a] = Some(b)` iff left `a` is matched to right `b`.
    pub(crate) pair_left: Vec<Option<usize>>,
    /// `pair_right[b] = Some(a)` iff right `b` is matched to left `a`.
    pub(crate) pair_right: Vec<Option<usize>>,
    pub(crate) size: usize,
}

impl Matching {
    pub(crate) fn new(left: usize, right: usize) -> Self {
        Matching {
            pair_left: vec![None; left],
            pair_right: vec![None; right],
            size: 0,
        }
    }

    /// Number of matched pairs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.size
    }

    /// Whether the matching is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// The right partner of left node `a`, if matched.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    #[must_use]
    pub fn partner_of_left(&self, a: usize) -> Option<usize> {
        self.pair_left[a]
    }

    /// The left partner of right node `b`, if matched.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    #[must_use]
    pub fn partner_of_right(&self, b: usize) -> Option<usize> {
        self.pair_right[b]
    }

    /// Whether the matching saturates the left side — the paper's success
    /// criterion: every faulty cell found an adjacent fault-free spare.
    #[must_use]
    pub fn covers_all_left(&self, graph: &BipartiteGraph) -> bool {
        self.size == graph.left_count()
    }

    /// The left nodes left unmatched (the faulty cells that could not be
    /// replaced), in index order.
    #[must_use]
    pub fn unmatched_left(&self) -> Vec<usize> {
        self.pair_left
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_none())
            .map(|(a, _)| a)
            .collect()
    }

    /// Iterates matched `(left, right)` pairs in left-index order.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.pair_left
            .iter()
            .enumerate()
            .filter_map(|(a, p)| p.map(|b| (a, b)))
    }

    /// Checks that the matching is consistent with `graph`: every matched
    /// pair is an edge and the two directions agree. Used by tests.
    #[must_use]
    pub fn is_valid(&self, graph: &BipartiteGraph) -> bool {
        if self.pair_left.len() != graph.left_count()
            || self.pair_right.len() != graph.right_count()
        {
            return false;
        }
        let mut count = 0;
        for (a, p) in self.pair_left.iter().enumerate() {
            if let Some(b) = p {
                if !graph.neighbors(a).contains(b) || self.pair_right[*b] != Some(a) {
                    return false;
                }
                count += 1;
            }
        }
        for (b, p) in self.pair_right.iter().enumerate() {
            if let Some(a) = p {
                if self.pair_left[*a] != Some(b) {
                    return false;
                }
            }
        }
        count == self.size
    }
}

/// Computes a maximum matching with the Hopcroft–Karp algorithm in
/// `O(E √V)`. This is the production matcher used by the Monte-Carlo yield
/// simulation, where it runs once per trial (10 000+ times per data point).
///
/// # Example
///
/// ```
/// use dmfb_graph::{BipartiteGraph, hopcroft_karp};
///
/// let mut g = BipartiteGraph::new(2, 1);
/// g.add_edge(0, 0);
/// g.add_edge(1, 0);
/// // Two faulty cells contend for one spare: only one can be replaced.
/// assert_eq!(hopcroft_karp(&g).len(), 1);
/// ```
#[must_use]
pub fn hopcroft_karp(graph: &BipartiteGraph) -> Matching {
    const INF: u32 = u32::MAX;
    let n = graph.left_count();
    let mut m = Matching::new(n, graph.right_count());
    if n == 0 || graph.right_count() == 0 || graph.edge_count() == 0 {
        return m;
    }
    let mut dist = vec![INF; n];
    let mut queue = VecDeque::new();

    loop {
        // BFS phase: layer the graph from unmatched left nodes.
        queue.clear();
        for (a, d) in dist.iter_mut().enumerate() {
            if m.pair_left[a].is_none() {
                *d = 0;
                queue.push_back(a);
            } else {
                *d = INF;
            }
        }
        let mut found_augmenting = false;
        while let Some(a) = queue.pop_front() {
            for &b in graph.neighbors(a) {
                match m.pair_right[b] {
                    None => found_augmenting = true,
                    Some(a2) => {
                        if dist[a2] == INF {
                            dist[a2] = dist[a] + 1;
                            queue.push_back(a2);
                        }
                    }
                }
            }
        }
        if !found_augmenting {
            break;
        }
        // DFS phase: find vertex-disjoint shortest augmenting paths.
        for a in 0..n {
            if m.pair_left[a].is_none() && dfs(graph, a, &mut m, &mut dist) {
                m.size += 1;
            }
        }
    }
    m
}

fn dfs(graph: &BipartiteGraph, a: usize, m: &mut Matching, dist: &mut [u32]) -> bool {
    for i in 0..graph.neighbors(a).len() {
        let b = graph.neighbors(a)[i];
        let advance = match m.pair_right[b] {
            None => true,
            Some(a2) => dist[a2] == dist[a] + 1 && dfs(graph, a2, m, dist),
        };
        if advance {
            m.pair_left[a] = Some(b);
            m.pair_right[b] = Some(a);
            return true;
        }
    }
    dist[a] = u32::MAX;
    false
}

/// Computes a maximum matching with the classic single-path augmenting
/// (Hungarian/Kuhn) algorithm in `O(V · E)`.
///
/// Slower than [`hopcroft_karp`] but easy to audit; the test suite uses it
/// as an independent oracle, and the ablation bench compares both.
#[must_use]
pub fn augmenting_path_matching(graph: &BipartiteGraph) -> Matching {
    let n = graph.left_count();
    let mut m = Matching::new(n, graph.right_count());
    let mut visited = vec![false; graph.right_count()];
    for a in 0..n {
        visited.iter_mut().for_each(|v| *v = false);
        if try_kuhn(graph, a, &mut m, &mut visited) {
            m.size += 1;
        }
    }
    m
}

fn try_kuhn(graph: &BipartiteGraph, a: usize, m: &mut Matching, visited: &mut [bool]) -> bool {
    for &b in graph.neighbors(a) {
        if visited[b] {
            continue;
        }
        visited[b] = true;
        let free_or_movable = match m.pair_right[b] {
            None => true,
            Some(a2) => try_kuhn(graph, a2, m, visited),
        };
        if free_or_movable {
            m.pair_left[a] = Some(b);
            m.pair_right[b] = Some(a);
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_from_edges(left: usize, right: usize, edges: &[(usize, usize)]) -> BipartiteGraph {
        let mut g = BipartiteGraph::new(left, right);
        for &(a, b) in edges {
            g.add_edge(a, b);
        }
        g
    }

    /// Exhaustive maximum matching by brute force, for small graphs.
    fn brute_force_max(graph: &BipartiteGraph) -> usize {
        fn rec(graph: &BipartiteGraph, a: usize, used: &mut Vec<bool>) -> usize {
            if a == graph.left_count() {
                return 0;
            }
            // Option 1: leave `a` unmatched.
            let mut best = rec(graph, a + 1, used);
            // Option 2: match `a` with any free neighbour.
            for &b in graph.neighbors(a) {
                if !used[b] {
                    used[b] = true;
                    best = best.max(1 + rec(graph, a + 1, used));
                    used[b] = false;
                }
            }
            best
        }
        rec(graph, 0, &mut vec![false; graph.right_count()])
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::new(0, 0);
        let m = hopcroft_karp(&g);
        assert!(m.is_empty());
        assert!(m.covers_all_left(&g));
        assert!(m.is_valid(&g));
    }

    #[test]
    fn no_edges_no_matching() {
        let g = BipartiteGraph::new(3, 3);
        let m = hopcroft_karp(&g);
        assert_eq!(m.len(), 0);
        assert!(!m.covers_all_left(&g));
        assert_eq!(m.unmatched_left(), vec![0, 1, 2]);
    }

    #[test]
    fn perfect_matching_found() {
        // Paper Figure 8 shape: faulty cells each adjacent to 1-2 spares.
        let g = graph_from_edges(3, 3, &[(0, 0), (0, 1), (1, 1), (2, 1), (2, 2)]);
        let m = hopcroft_karp(&g);
        assert_eq!(m.len(), 3);
        assert!(m.covers_all_left(&g));
        assert!(m.is_valid(&g));
        // pairs() is consistent
        for (a, b) in m.pairs() {
            assert_eq!(m.partner_of_left(a), Some(b));
            assert_eq!(m.partner_of_right(b), Some(a));
        }
    }

    #[test]
    fn contention_limits_matching() {
        // Two faulty cells share the only fault-free spare.
        let g = graph_from_edges(2, 1, &[(0, 0), (1, 0)]);
        let m = hopcroft_karp(&g);
        assert_eq!(m.len(), 1);
        assert!(!m.covers_all_left(&g));
        assert_eq!(m.unmatched_left().len(), 1);
    }

    #[test]
    fn augmentation_reroutes_earlier_choices() {
        // Greedy would match 0-0 and strand 1; augmenting must fix it.
        let g = graph_from_edges(2, 2, &[(0, 0), (0, 1), (1, 0)]);
        let m = hopcroft_karp(&g);
        assert_eq!(m.len(), 2);
        assert_eq!(m.partner_of_left(1), Some(0));
        assert_eq!(m.partner_of_left(0), Some(1));
    }

    #[test]
    fn kuhn_agrees_with_hk_on_fixed_cases() {
        type Case = (usize, usize, Vec<(usize, usize)>);
        let cases: Vec<Case> = vec![
            (1, 1, vec![(0, 0)]),
            (
                4,
                4,
                vec![(0, 0), (1, 0), (1, 1), (2, 1), (2, 2), (3, 2), (3, 3)],
            ),
            (3, 2, vec![(0, 0), (1, 0), (2, 0), (2, 1)]),
            (5, 5, vec![]),
        ];
        for (l, r, edges) in cases {
            let g = graph_from_edges(l, r, &edges);
            let hk = hopcroft_karp(&g);
            let kuhn = augmenting_path_matching(&g);
            assert_eq!(hk.len(), kuhn.len(), "edges {edges:?}");
            assert_eq!(hk.len(), brute_force_max(&g));
            assert!(hk.is_valid(&g));
            assert!(kuhn.is_valid(&g));
        }
    }

    #[test]
    fn randomized_cross_check() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x5EED);
        for _ in 0..200 {
            let l = rng.gen_range(0..7);
            let r = rng.gen_range(0..7);
            let mut g = BipartiteGraph::new(l, r);
            if l > 0 && r > 0 {
                for a in 0..l {
                    for b in 0..r {
                        if rng.gen_bool(0.3) {
                            g.add_edge(a, b);
                        }
                    }
                }
            }
            let hk = hopcroft_karp(&g);
            let kuhn = augmenting_path_matching(&g);
            let brute = brute_force_max(&g);
            assert_eq!(hk.len(), brute);
            assert_eq!(kuhn.len(), brute);
            assert!(hk.is_valid(&g));
            assert!(kuhn.is_valid(&g));
        }
    }

    #[test]
    fn isolated_left_never_covered() {
        let g = graph_from_edges(2, 2, &[(0, 0)]);
        assert!(g.has_isolated_left());
        let m = hopcroft_karp(&g);
        assert!(!m.covers_all_left(&g));
        assert_eq!(m.unmatched_left(), vec![1]);
    }

    #[test]
    fn large_bipartite_complete_graph() {
        // K(50,50): perfect matching must be found quickly.
        let mut g = BipartiteGraph::new(50, 50);
        for a in 0..50 {
            for b in 0..50 {
                g.add_edge(a, b);
            }
        }
        let m = hopcroft_karp(&g);
        assert_eq!(m.len(), 50);
        assert!(m.is_valid(&g));
    }
}
