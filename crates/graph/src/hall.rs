//! Hall-theorem deficiency witnesses.
//!
//! By König/Hall duality, a bipartite graph has a matching saturating the
//! left side iff every subset `S ⊆ A` satisfies `|N(S)| >= |S|`. When local
//! reconfiguration fails, the *deficient set* — a set of faulty cells with
//! fewer adjacent fault-free spares than members — is a human-readable
//! explanation of the failure, which the diagnostics in `dmfb-reconfig`
//! surface to users.

use crate::{hopcroft_karp, BipartiteGraph};

/// A witness that no matching can cover all left nodes: a set `S` of left
/// nodes whose joint neighbourhood `N(S)` is strictly smaller than `S`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HallViolation {
    /// The deficient left nodes (faulty cells), sorted.
    pub left_set: Vec<usize>,
    /// Their joint right-side neighbourhood (available spares), sorted.
    pub neighborhood: Vec<usize>,
}

impl HallViolation {
    /// Deficiency `|S| - |N(S)|` (always >= 1 for a genuine violation).
    #[must_use]
    pub fn deficiency(&self) -> usize {
        self.left_set.len().saturating_sub(self.neighborhood.len())
    }
}

/// Finds a Hall violation if the graph admits no left-saturating matching,
/// or `None` if all left nodes can be matched.
///
/// The witness is extracted from a maximum matching: starting from any
/// unmatched left node, alternate unmatched/matched edges; the left nodes
/// reachable this way form a deficient set.
///
/// # Example
///
/// ```
/// use dmfb_graph::{BipartiteGraph, hall_violation};
///
/// // Two faulty cells fight over one spare.
/// let mut g = BipartiteGraph::new(2, 1);
/// g.add_edge(0, 0);
/// g.add_edge(1, 0);
/// let v = hall_violation(&g).expect("must be deficient");
/// assert_eq!(v.left_set, vec![0, 1]);
/// assert_eq!(v.neighborhood, vec![0]);
/// assert_eq!(v.deficiency(), 1);
/// ```
#[must_use]
pub fn hall_violation(graph: &BipartiteGraph) -> Option<HallViolation> {
    let m = hopcroft_karp(graph);
    if m.covers_all_left(graph) {
        return None;
    }
    // Alternating BFS from all unmatched left nodes.
    let mut left_visited = vec![false; graph.left_count()];
    let mut right_visited = vec![false; graph.right_count()];
    let mut stack: Vec<usize> = m.unmatched_left();
    for &a in &stack {
        left_visited[a] = true;
    }
    while let Some(a) = stack.pop() {
        for &b in graph.neighbors(a) {
            if right_visited[b] {
                continue;
            }
            right_visited[b] = true;
            if let Some(a2) = m.partner_of_right(b) {
                if !left_visited[a2] {
                    left_visited[a2] = true;
                    stack.push(a2);
                }
            }
        }
    }
    let left_set: Vec<usize> = (0..graph.left_count())
        .filter(|&a| left_visited[a])
        .collect();
    let neighborhood: Vec<usize> = (0..graph.right_count())
        .filter(|&b| right_visited[b])
        .collect();
    Some(HallViolation {
        left_set,
        neighborhood,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturating_graph_has_no_violation() {
        let mut g = BipartiteGraph::new(2, 2);
        g.add_edge(0, 0);
        g.add_edge(1, 1);
        assert!(hall_violation(&g).is_none());
    }

    #[test]
    fn witness_is_genuinely_deficient() {
        // 3 left nodes all adjacent only to right node 0 and 1.
        let mut g = BipartiteGraph::new(3, 3);
        for a in 0..3 {
            g.add_edge(a, 0);
            g.add_edge(a, 1);
        }
        let v = hall_violation(&g).expect("deficient");
        assert!(v.deficiency() >= 1);
        // Verify N(S) computed from the graph matches the witness.
        let mut nbhd: Vec<usize> = v
            .left_set
            .iter()
            .flat_map(|&a| graph_neighbors(&g, a))
            .collect();
        nbhd.sort_unstable();
        nbhd.dedup();
        assert_eq!(nbhd, v.neighborhood);
        assert!(v.left_set.len() > v.neighborhood.len());
    }

    fn graph_neighbors(g: &BipartiteGraph, a: usize) -> Vec<usize> {
        g.neighbors(a).to_vec()
    }

    #[test]
    fn isolated_node_is_minimal_witness() {
        let mut g = BipartiteGraph::new(2, 2);
        g.add_edge(0, 0);
        // left 1 isolated
        let v = hall_violation(&g).expect("deficient");
        assert!(v.left_set.contains(&1));
        // The neighbourhood of the witness set must be smaller than the set.
        assert!(v.left_set.len() > v.neighborhood.len());
    }

    #[test]
    fn empty_left_is_trivially_saturated() {
        let g = BipartiteGraph::new(0, 3);
        assert!(hall_violation(&g).is_none());
    }
}
