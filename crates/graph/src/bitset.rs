//! Bitset-adjacency bipartite graphs and a cache-friendly Hopcroft–Karp.
//!
//! The Monte-Carlo hot path solves tens of thousands of small bipartite
//! matching problems per yield point. [`BipartiteGraph`] stores one heap
//! `Vec` per left node, which is flexible but costs an allocation per node
//! and a pointer chase per neighbour. [`BitsetGraph`] instead packs each
//! left node's neighbour set into `u64` words of one flat buffer, so
//!
//! * building a graph is `left × words` zeroed `u64`s plus one bit-set per
//!   edge (no per-node allocations),
//! * neighbour iteration is `trailing_zeros` over a register, and
//! * whole-neighbourhood questions (Hall checks, unions) are word-wise ORs.
//!
//! [`BitsetMatcher`] runs Hopcroft–Karp over this layout with reusable
//! scratch buffers, and [`BitsetGraph::hall_infeasible`] answers "can a
//! left-perfect matching possibly exist?" in `O(left × words)` before any
//! search starts — the early exit that serves the simulator's yes/no
//! question.

use crate::matching::Matching;
use crate::BipartiteGraph;

/// A bipartite graph whose left-node neighbour sets are `u64` bitsets.
///
/// Functionally equivalent to [`BipartiteGraph`] for matching purposes;
/// trades the ability to iterate edges in insertion order for dense storage
/// and word-parallel set operations.
///
/// # Example
///
/// ```
/// use dmfb_graph::{hopcroft_karp_bitset, BitsetGraph};
///
/// let mut g = BitsetGraph::new(2, 2);
/// g.add_edge(0, 0);
/// g.add_edge(0, 1);
/// g.add_edge(1, 0);
/// let m = hopcroft_karp_bitset(&g);
/// assert_eq!(m.len(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitsetGraph {
    left_count: usize,
    right_count: usize,
    words_per_row: usize,
    /// `left_count × words_per_row` words; bit `b` of row `a` is edge `(a, b)`.
    adj: Vec<u64>,
    edges: usize,
}

impl BitsetGraph {
    /// Creates a graph with the given side sizes and no edges.
    #[must_use]
    pub fn new(left_count: usize, right_count: usize) -> Self {
        let words_per_row = right_count.div_ceil(64);
        BitsetGraph {
            left_count,
            right_count,
            words_per_row,
            adj: vec![0u64; left_count * words_per_row],
            edges: 0,
        }
    }

    /// Converts an adjacency-list graph into the bitset layout.
    #[must_use]
    pub fn from_graph(graph: &BipartiteGraph) -> Self {
        let mut g = BitsetGraph::new(graph.left_count(), graph.right_count());
        for (a, b) in graph.edges() {
            g.add_edge(a, b);
        }
        g
    }

    /// Clears all edges while keeping the side sizes and buffer capacity —
    /// the reuse entry point for per-trial graph construction.
    pub fn clear_edges(&mut self) {
        self.adj.iter_mut().for_each(|w| *w = 0);
        self.edges = 0;
    }

    /// Reshapes the graph to new side sizes, reusing the buffer when it is
    /// large enough, and clears all edges.
    pub fn reset(&mut self, left_count: usize, right_count: usize) {
        self.left_count = left_count;
        self.right_count = right_count;
        self.words_per_row = right_count.div_ceil(64);
        let need = left_count * self.words_per_row;
        self.adj.clear();
        self.adj.resize(need, 0);
        self.edges = 0;
    }

    /// Adds the edge `(a, b)`. Duplicate edges are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        assert!(a < self.left_count, "left node {a} out of range");
        assert!(b < self.right_count, "right node {b} out of range");
        let word = &mut self.adj[a * self.words_per_row + b / 64];
        let mask = 1u64 << (b % 64);
        if *word & mask == 0 {
            *word |= mask;
            self.edges += 1;
        }
    }

    /// Number of left-side nodes.
    #[must_use]
    pub fn left_count(&self) -> usize {
        self.left_count
    }

    /// Number of right-side nodes.
    #[must_use]
    pub fn right_count(&self) -> usize {
        self.right_count
    }

    /// Number of edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Whether the edge `(a, b)` is present.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    #[must_use]
    pub fn contains_edge(&self, a: usize, b: usize) -> bool {
        assert!(a < self.left_count, "left node {a} out of range");
        assert!(b < self.right_count, "right node {b} out of range");
        self.adj[a * self.words_per_row + b / 64] & (1u64 << (b % 64)) != 0
    }

    /// The neighbour bitset of left node `a` as `u64` words.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    #[must_use]
    pub fn row(&self, a: usize) -> &[u64] {
        &self.adj[a * self.words_per_row..(a + 1) * self.words_per_row]
    }

    /// Iterates the right-side neighbours of `a` in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn neighbors(&self, a: usize) -> impl Iterator<Item = usize> + '_ {
        self.row(a).iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + bit)
            })
        })
    }

    /// Degree of left node `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    #[must_use]
    pub fn degree_left(&self, a: usize) -> usize {
        self.row(a).iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether some left node has no neighbours at all.
    #[must_use]
    pub fn has_isolated_left(&self) -> bool {
        (0..self.left_count).any(|a| self.row(a).iter().all(|&w| w == 0))
    }

    /// Cheap certificate that **no left-saturating (perfect-on-A) matching
    /// can exist**, checked before any augmenting search:
    ///
    /// 1. more left nodes than right nodes,
    /// 2. an isolated left node (`N({a}) = ∅`), or
    /// 3. a Hall violation on the full left side: `|N(A)| < |A|`, computed
    ///    as the popcount of the word-wise OR of every row.
    ///
    /// A `false` return is *not* a feasibility proof — Hall's condition
    /// must hold for every subset — but on the simulator's sparse defect
    /// graphs these three checks dismiss most infeasible instances in one
    /// linear pass.
    #[must_use]
    pub fn hall_infeasible(&self) -> bool {
        if self.left_count == 0 {
            return false;
        }
        if self.left_count > self.right_count {
            return true;
        }
        // Single pass: OR all rows while watching for an empty one. The
        // per-trial graphs are narrow, so the union lives on the stack
        // unless the right side exceeds 512 nodes.
        let mut stack = [0u64; 8];
        let mut heap;
        let union: &mut [u64] = if self.words_per_row <= stack.len() {
            &mut stack[..self.words_per_row]
        } else {
            heap = vec![0u64; self.words_per_row];
            &mut heap
        };
        for a in 0..self.left_count {
            let row = self.row(a);
            let mut any = 0u64;
            // 4-wide unroll: four independent OR accumuland updates per
            // iteration keep wide rows off a serial dependency chain.
            let mut quads = union.chunks_exact_mut(4);
            let mut row_quads = row.chunks_exact(4);
            for (u, w) in (&mut quads).zip(&mut row_quads) {
                u[0] |= w[0];
                u[1] |= w[1];
                u[2] |= w[2];
                u[3] |= w[3];
                any |= (w[0] | w[1]) | (w[2] | w[3]);
            }
            for (u, &w) in quads.into_remainder().iter_mut().zip(row_quads.remainder()) {
                *u |= w;
                any |= w;
            }
            if any == 0 {
                return true; // isolated left node
            }
        }
        let reachable: usize = union.iter().map(|w| w.count_ones() as usize).sum();
        reachable < self.left_count
    }
}

impl Matching {
    /// Checks that the matching is consistent with a [`BitsetGraph`]:
    /// every matched pair is an edge and the two directions agree.
    #[must_use]
    pub fn is_valid_bitset(&self, graph: &BitsetGraph) -> bool {
        if self.pair_left.len() != graph.left_count()
            || self.pair_right.len() != graph.right_count()
        {
            return false;
        }
        let mut count = 0;
        for (a, p) in self.pair_left.iter().enumerate() {
            if let Some(b) = p {
                if !graph.contains_edge(a, *b) || self.pair_right[*b] != Some(a) {
                    return false;
                }
                count += 1;
            }
        }
        for (b, p) in self.pair_right.iter().enumerate() {
            if let Some(a) = p {
                if self.pair_left[*a] != Some(b) {
                    return false;
                }
            }
        }
        count == self.size
    }
}

const UNMATCHED: u32 = u32::MAX;
const INF: u32 = u32::MAX;

/// Reusable Hopcroft–Karp scratch state for [`BitsetGraph`]s.
///
/// The Monte-Carlo simulator calls the matcher once per trial; allocating
/// the BFS queue, layer array and pairing arrays each time dominates the
/// cost of the tiny searches themselves. A `BitsetMatcher` owns those
/// buffers and grows them on demand, so a long trial loop settles into
/// zero allocations.
///
/// # Example
///
/// ```
/// use dmfb_graph::{BitsetGraph, BitsetMatcher};
///
/// let mut g = BitsetGraph::new(2, 1);
/// g.add_edge(0, 0);
/// g.add_edge(1, 0);
/// let mut matcher = BitsetMatcher::new();
/// assert!(!matcher.covers_all_left(&g)); // two faults, one spare
/// assert_eq!(matcher.max_matching(&g).len(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct BitsetMatcher {
    pair_left: Vec<u32>,
    pair_right: Vec<u32>,
    dist: Vec<u32>,
    queue: Vec<u32>,
}

impl BitsetMatcher {
    /// Creates a matcher with empty scratch buffers.
    #[must_use]
    pub fn new() -> Self {
        BitsetMatcher::default()
    }

    fn prepare(&mut self, graph: &BitsetGraph) {
        self.pair_left.clear();
        self.pair_left.resize(graph.left_count(), UNMATCHED);
        self.pair_right.clear();
        self.pair_right.resize(graph.right_count(), UNMATCHED);
        self.dist.clear();
        self.dist.resize(graph.left_count(), INF);
        self.queue.clear();
    }

    /// Scans one adjacency word during the BFS layering phase: every set
    /// bit is a right node to relax through its current partner.
    #[inline(always)]
    fn bfs_word(&mut self, mut w: u64, base: usize, next: u32, found: &mut bool) {
        while w != 0 {
            let b = base + w.trailing_zeros() as usize;
            w &= w - 1;
            let a2 = self.pair_right[b];
            if a2 == UNMATCHED {
                *found = true;
            } else if self.dist[a2 as usize] == INF {
                self.dist[a2 as usize] = next;
                self.queue.push(a2);
            }
        }
    }

    /// One BFS layering phase. Returns `true` if an augmenting path
    /// exists. The adjacency-word loop is manually unrolled 4-wide: one
    /// OR dismisses four empty words at a time, which is the common case
    /// on the simulator's sparse per-trial rows.
    fn bfs(&mut self, graph: &BitsetGraph) -> bool {
        self.queue.clear();
        for a in 0..graph.left_count() {
            if self.pair_left[a] == UNMATCHED {
                self.dist[a] = 0;
                self.queue.push(a as u32);
            } else {
                self.dist[a] = INF;
            }
        }
        let mut found = false;
        let mut head = 0;
        while head < self.queue.len() {
            let a = self.queue[head] as usize;
            head += 1;
            let next = self.dist[a] + 1;
            let row = graph.row(a);
            let mut wi = 0;
            while wi + 4 <= row.len() {
                let (w0, w1, w2, w3) = (row[wi], row[wi + 1], row[wi + 2], row[wi + 3]);
                if (w0 | w1) | (w2 | w3) != 0 {
                    self.bfs_word(w0, wi * 64, next, &mut found);
                    self.bfs_word(w1, (wi + 1) * 64, next, &mut found);
                    self.bfs_word(w2, (wi + 2) * 64, next, &mut found);
                    self.bfs_word(w3, (wi + 3) * 64, next, &mut found);
                }
                wi += 4;
            }
            while wi < row.len() {
                self.bfs_word(row[wi], wi * 64, next, &mut found);
                wi += 1;
            }
        }
        found
    }

    /// Scans one adjacency word during the layered DFS; returns `true`
    /// as soon as an augmenting path through one of its bits succeeds.
    #[inline(always)]
    fn dfs_word(
        &mut self,
        graph: &BitsetGraph,
        a: usize,
        mut w: u64,
        base: usize,
        next: u32,
    ) -> bool {
        while w != 0 {
            let b = base + w.trailing_zeros() as usize;
            w &= w - 1;
            let a2 = self.pair_right[b];
            let advance =
                a2 == UNMATCHED || (self.dist[a2 as usize] == next && self.dfs(graph, a2 as usize));
            if advance {
                self.pair_left[a] = b as u32;
                self.pair_right[b] = a as u32;
                return true;
            }
        }
        false
    }

    /// Layered DFS from left node `a`, augmenting along a shortest path.
    /// Same 4-wide word unrolling as [`BitsetMatcher::bfs`]; bit visit
    /// order (ascending) is unchanged, so matchings are byte-identical
    /// to the rolled loop's.
    fn dfs(&mut self, graph: &BitsetGraph, a: usize) -> bool {
        let next = self.dist[a] + 1;
        let row = graph.row(a);
        let mut wi = 0;
        while wi + 4 <= row.len() {
            let (w0, w1, w2, w3) = (row[wi], row[wi + 1], row[wi + 2], row[wi + 3]);
            if (w0 | w1) | (w2 | w3) != 0
                && (self.dfs_word(graph, a, w0, wi * 64, next)
                    || self.dfs_word(graph, a, w1, (wi + 1) * 64, next)
                    || self.dfs_word(graph, a, w2, (wi + 2) * 64, next)
                    || self.dfs_word(graph, a, w3, (wi + 3) * 64, next))
            {
                return true;
            }
            wi += 4;
        }
        while wi < row.len() {
            if self.dfs_word(graph, a, row[wi], wi * 64, next) {
                return true;
            }
            wi += 1;
        }
        self.dist[a] = INF;
        false
    }

    /// Runs Hopcroft–Karp phases; returns the matching size. If
    /// `stop_at_left_cover` is set, returns early (possibly before the
    /// matching is maximum) once every left node is matched.
    fn solve(&mut self, graph: &BitsetGraph, stop_at_left_cover: bool) -> usize {
        self.prepare(graph);
        let n = graph.left_count();
        if n == 0 || graph.right_count() == 0 || graph.edge_count() == 0 {
            return 0;
        }
        let mut size = 0usize;
        while self.bfs(graph) {
            for a in 0..n {
                if self.pair_left[a] == UNMATCHED && self.dfs(graph, a) {
                    size += 1;
                }
            }
            if stop_at_left_cover && size == n {
                break;
            }
        }
        size
    }

    /// Whether a matching covering **every left node** exists — the
    /// simulator's tolerability question. Early-exits on
    /// [`BitsetGraph::hall_infeasible`] before searching, and stops
    /// augmenting as soon as the left side is saturated.
    pub fn covers_all_left(&mut self, graph: &BitsetGraph) -> bool {
        if graph.left_count() == 0 || graph.hall_infeasible() {
            // Early exits bypass `solve`; drop any pairs left over from a
            // previous run so `left_pairs` never reports a stale matching.
            self.pair_left.clear();
            self.pair_right.clear();
            return graph.left_count() == 0;
        }
        self.solve(graph, true) == graph.left_count()
    }

    /// The `(left, right)` pairs of the matching computed by the most
    /// recent [`BitsetMatcher::covers_all_left`] or
    /// [`BitsetMatcher::max_matching`] call, in ascending left order.
    ///
    /// This is how callers that need the *assignment* — not just the
    /// yes/no cover verdict — read it back without paying for a fresh
    /// [`Matching`] allocation: `covers_all_left` first, then iterate the
    /// pairs. Empty when no solve has run (or the left side was empty).
    ///
    /// # Example
    ///
    /// ```
    /// use dmfb_graph::{BitsetGraph, BitsetMatcher};
    ///
    /// let mut g = BitsetGraph::new(2, 2);
    /// g.add_edge(0, 1);
    /// g.add_edge(1, 0);
    /// let mut matcher = BitsetMatcher::new();
    /// assert!(matcher.covers_all_left(&g));
    /// let pairs: Vec<_> = matcher.left_pairs().collect();
    /// assert_eq!(pairs, vec![(0, 1), (1, 0)]);
    /// ```
    pub fn left_pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.pair_left
            .iter()
            .enumerate()
            .filter(|(_, &b)| b != UNMATCHED)
            .map(|(a, &b)| (a, b as usize))
    }

    /// Computes a maximum matching, reusing this matcher's buffers.
    pub fn max_matching(&mut self, graph: &BitsetGraph) -> Matching {
        let size = self.solve(graph, false);
        let mut m = Matching::new(graph.left_count(), graph.right_count());
        for (a, &b) in self.pair_left.iter().enumerate() {
            if b != UNMATCHED {
                m.pair_left[a] = Some(b as usize);
            }
        }
        for (b, &a) in self.pair_right.iter().enumerate() {
            if a != UNMATCHED {
                m.pair_right[b] = Some(a as usize);
            }
        }
        m.size = size;
        m
    }
}

/// Computes a maximum matching over a [`BitsetGraph`] with Hopcroft–Karp
/// in `O(E √V)`. One-shot convenience wrapper around [`BitsetMatcher`];
/// loops should hold a matcher and call [`BitsetMatcher::max_matching`]
/// to reuse its scratch buffers.
///
/// # Example
///
/// ```
/// use dmfb_graph::{hopcroft_karp_bitset, BipartiteGraph, BitsetGraph};
///
/// let mut g = BipartiteGraph::new(2, 1);
/// g.add_edge(0, 0);
/// g.add_edge(1, 0);
/// let m = hopcroft_karp_bitset(&BitsetGraph::from_graph(&g));
/// assert_eq!(m.len(), 1);
/// ```
#[must_use]
pub fn hopcroft_karp_bitset(graph: &BitsetGraph) -> Matching {
    BitsetMatcher::new().max_matching(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hopcroft_karp;

    fn both(left: usize, right: usize, edges: &[(usize, usize)]) -> (BipartiteGraph, BitsetGraph) {
        let mut g = BipartiteGraph::new(left, right);
        for &(a, b) in edges {
            g.add_edge(a, b);
        }
        let bg = BitsetGraph::from_graph(&g);
        (g, bg)
    }

    #[test]
    fn construction_mirrors_adjacency_list() {
        let (g, bg) = both(3, 70, &[(0, 0), (0, 69), (2, 64), (2, 64)]);
        assert_eq!(bg.left_count(), 3);
        assert_eq!(bg.right_count(), 70);
        assert_eq!(bg.edge_count(), g.edge_count());
        assert!(bg.contains_edge(0, 69));
        assert!(!bg.contains_edge(1, 0));
        assert_eq!(bg.neighbors(0).collect::<Vec<_>>(), vec![0, 69]);
        assert_eq!(bg.degree_left(2), 1);
        assert_eq!(bg.degree_left(1), 0);
        assert!(bg.has_isolated_left());
    }

    type EdgeCase = (usize, usize, &'static [(usize, usize)]);

    #[test]
    fn matches_list_matcher_on_fixed_cases() {
        let cases: &[EdgeCase] = &[
            (0, 0, &[]),
            (3, 3, &[]),
            (1, 1, &[(0, 0)]),
            (2, 1, &[(0, 0), (1, 0)]),
            (2, 2, &[(0, 0), (0, 1), (1, 0)]),
            (3, 3, &[(0, 0), (0, 1), (1, 1), (2, 1), (2, 2)]),
            (
                4,
                4,
                &[(0, 0), (1, 0), (1, 1), (2, 1), (2, 2), (3, 2), (3, 3)],
            ),
        ];
        for &(l, r, edges) in cases {
            let (g, bg) = both(l, r, edges);
            let list = hopcroft_karp(&g);
            let bits = hopcroft_karp_bitset(&bg);
            assert_eq!(list.len(), bits.len(), "edges {edges:?}");
            assert!(bits.is_valid_bitset(&bg));
        }
    }

    #[test]
    fn covers_all_left_agrees_with_full_matching() {
        let mut matcher = BitsetMatcher::new();
        let (_, feasible) = both(2, 2, &[(0, 0), (0, 1), (1, 0)]);
        assert!(matcher.covers_all_left(&feasible));
        let (_, tight) = both(2, 1, &[(0, 0), (1, 0)]);
        assert!(!matcher.covers_all_left(&tight));
        let (_, empty) = both(0, 4, &[]);
        assert!(matcher.covers_all_left(&empty));
    }

    #[test]
    fn hall_infeasible_certificates() {
        // More left than right.
        let (_, g) = both(3, 2, &[(0, 0), (1, 1), (2, 0)]);
        assert!(g.hall_infeasible());
        // Isolated left node.
        let (_, g) = both(2, 2, &[(0, 0)]);
        assert!(g.hall_infeasible());
        // Joint neighbourhood too small.
        let (_, g) = both(3, 3, &[(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1)]);
        assert!(g.hall_infeasible());
        // Feasible square.
        let (_, g) = both(2, 2, &[(0, 0), (1, 1)]);
        assert!(!g.hall_infeasible());
        // Infeasible but not caught by the cheap certificate (subset
        // violation): {0,1} share spare 0 while spare 1 hangs off node 2.
        let (_, g) = both(3, 3, &[(0, 0), (1, 0), (2, 1), (2, 2), (0, 0)]);
        assert!(!g.hall_infeasible());
        assert!(!BitsetMatcher::new().covers_all_left(&g));
        // Empty left side is trivially feasible.
        let (_, g) = both(0, 1, &[]);
        assert!(!g.hall_infeasible());
    }

    #[test]
    fn matcher_buffers_are_reusable() {
        let mut matcher = BitsetMatcher::new();
        let (_, a) = both(3, 3, &[(0, 0), (1, 1), (2, 2)]);
        let (_, b) = both(2, 1, &[(0, 0), (1, 0)]);
        for _ in 0..3 {
            assert_eq!(matcher.max_matching(&a).len(), 3);
            assert_eq!(matcher.max_matching(&b).len(), 1);
            assert!(matcher.covers_all_left(&a));
            assert!(!matcher.covers_all_left(&b));
        }
    }

    #[test]
    fn reset_and_clear_reuse_storage() {
        let mut g = BitsetGraph::new(2, 130);
        g.add_edge(0, 129);
        g.add_edge(1, 0);
        assert_eq!(g.edge_count(), 2);
        g.clear_edges();
        assert_eq!(g.edge_count(), 0);
        assert!(!g.contains_edge(0, 129));
        g.reset(4, 5);
        assert_eq!(g.left_count(), 4);
        assert_eq!(g.right_count(), 5);
        g.add_edge(3, 4);
        assert_eq!(g.edge_count(), 1);
        assert!(g.contains_edge(3, 4));
    }

    #[test]
    fn wide_right_side_crosses_word_boundaries() {
        // A perfect matching where partners sit in different u64 words.
        let mut g = BitsetGraph::new(4, 260);
        for a in 0..4 {
            g.add_edge(a, a * 64 + 63);
            g.add_edge(a, 259);
        }
        let m = hopcroft_karp_bitset(&g);
        assert_eq!(m.len(), 4);
        assert!(m.is_valid_bitset(&g));
        assert!(BitsetMatcher::new().covers_all_left(&g));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_bounds_checked() {
        let mut g = BitsetGraph::new(1, 64);
        g.add_edge(0, 64);
    }
}
