//! Microbenchmarks for the word-level kernels under the tiered block
//! trial engine: the lock-step lane RNG, the transposed pack, the
//! bit-sliced lane counter, and the unrolled bitset matcher they feed.
//! These are the per-word costs that multiply into the macro trials/s
//! numbers `dmfb bench` reports.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmfb_graph::words::{lane_mask, mantissa_threshold, LaneCounter, LaneRngs, LANES};
use dmfb_graph::{BipartiteGraph, BitsetGraph, BitsetMatcher};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn seeds(n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| 0xBE7C_2005 ^ (i * 0x9E37)).collect()
}

/// One word group of the sampler tier: 64 lanes drawing one mantissa
/// column per cell, with and without the packed ≥-threshold compare.
fn bench_sampler(c: &mut Criterion) {
    let mut group = c.benchmark_group("word_sampler");
    let threshold = mantissa_threshold(0.99);
    for &cells in &[64usize, 256, 1024] {
        group.bench_with_input(BenchmarkId::new("next_ge", cells), &cells, |b, &cells| {
            let mut rngs = LaneRngs::new(&seeds(LANES));
            b.iter(|| {
                let mut acc = 0u64;
                for _ in 0..cells {
                    acc ^= rngs.next_ge(threshold);
                }
                black_box(acc)
            });
        });
        group.bench_with_input(BenchmarkId::new("fill_ge", cells), &cells, |b, &cells| {
            let mut rngs = LaneRngs::new(&seeds(LANES));
            let mut words = vec![0u64; cells];
            b.iter(|| {
                rngs.fill_ge(threshold, &mut words);
                black_box(words[cells - 1])
            });
        });
        group.bench_with_input(
            BenchmarkId::new("next_mantissas", cells),
            &cells,
            |b, &cells| {
                let mut rngs = LaneRngs::new(&seeds(LANES));
                let mut column = [0u64; LANES];
                b.iter(|| {
                    let mut acc = 0u64;
                    for _ in 0..cells {
                        rngs.next_mantissas(&mut column);
                        acc ^= column[0] ^ column[LANES - 1];
                    }
                    black_box(acc)
                });
            },
        );
    }
    group.finish();
}

/// The classifier tier's Hall counter: saturating bit-sliced adds over a
/// cell-fault word stream, then the ≤-bound mask extraction.
fn bench_counter(c: &mut Criterion) {
    let mut group = c.benchmark_group("lane_counter");
    for &cells in &[64usize, 256, 1024] {
        let words: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(7);
            // ~2% set bits: the fault density the counter sees in practice.
            (0..cells)
                .map(|_| (0..LANES).fold(0u64, |w, l| w | (u64::from(rng.gen_bool(0.02)) << l)))
                .collect()
        };
        group.bench_with_input(
            BenchmarkId::new("add_le_mask", cells),
            &words,
            |b, words| {
                let mut counter = LaneCounter::new(2);
                b.iter(|| {
                    counter.reset();
                    for &w in words {
                        counter.add(w);
                    }
                    black_box(counter.le_mask(2) & lane_mask(LANES))
                });
            },
        );
    }
    group.finish();
}

/// The residue tier's matcher on reconfiguration-shaped instances: the
/// 4-wide unrolled BFS/DFS word loop inside `BitsetMatcher`.
fn bench_matcher(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitset_matcher");
    for &size in &[32usize, 128, 512] {
        let mut rng = StdRng::seed_from_u64(42);
        let mut g = BipartiteGraph::new(size, size / 2 + 8);
        for a in 0..size {
            for _ in 0..2 {
                g.add_edge(a, rng.gen_range(0..size / 2 + 8));
            }
        }
        let bg = BitsetGraph::from_graph(&g);
        group.bench_with_input(BenchmarkId::new("covers_all_left", size), &bg, |b, bg| {
            let mut matcher = BitsetMatcher::new();
            b.iter(|| black_box(matcher.covers_all_left(bg)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sampler, bench_counter, bench_matcher);
criterion_main!(benches);
