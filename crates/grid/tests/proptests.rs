//! Property-based tests for the lattice substrate.

use dmfb_grid::{AdjacencyGraph, HexCoord, HexDir, Region};
use proptest::prelude::*;

fn arb_coord() -> impl Strategy<Value = HexCoord> {
    (-50i32..50, -50i32..50).prop_map(|(q, r)| HexCoord::new(q, r))
}

fn arb_dir() -> impl Strategy<Value = HexDir> {
    prop::sample::select(HexDir::ALL.to_vec())
}

proptest! {
    /// distance(a, b) == distance(b, a) and distance(a, a) == 0.
    #[test]
    fn distance_symmetric(a in arb_coord(), b in arb_coord()) {
        prop_assert_eq!(a.distance(b), b.distance(a));
        prop_assert_eq!(a.distance(a), 0);
    }

    /// Triangle inequality for the hex metric.
    #[test]
    fn distance_triangle(a in arb_coord(), b in arb_coord(), c in arb_coord()) {
        prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c));
    }

    /// A unit step changes distance by exactly one from the origin of the step.
    #[test]
    fn step_moves_by_one(a in arb_coord(), d in arb_dir()) {
        let b = a.step(d);
        prop_assert_eq!(a.distance(b), 1);
        prop_assert_eq!(b.step(d.opposite()), a);
    }

    /// Translation invariance of the metric.
    #[test]
    fn distance_translation_invariant(a in arb_coord(), b in arb_coord(), t in arb_coord()) {
        prop_assert_eq!((a + t).distance(b + t), a.distance(b));
    }

    /// Lines are shortest droplet routes: length = distance + 1, steps adjacent.
    #[test]
    fn lines_are_shortest_paths(a in arb_coord(), b in arb_coord()) {
        let line = a.line_to(b);
        prop_assert_eq!(line.len() as u32, a.distance(b) + 1);
        prop_assert_eq!(*line.first().unwrap(), a);
        prop_assert_eq!(*line.last().unwrap(), b);
        for w in line.windows(2) {
            prop_assert!(w[0].is_adjacent(w[1]));
        }
    }

    /// Rings partition the filled hexagon.
    #[test]
    fn ring_cells_at_radius(c in arb_coord(), radius in 0u32..6) {
        let ring: Vec<_> = c.ring(radius).collect();
        let expected = if radius == 0 { 1 } else { (6 * radius) as usize };
        prop_assert_eq!(ring.len(), expected);
        for x in ring {
            prop_assert_eq!(c.distance(x), radius);
        }
    }

    /// Parallelogram regions are connected and have the right size.
    #[test]
    fn parallelogram_connected(w in 1u32..12, h in 1u32..12) {
        let region = Region::parallelogram(w, h);
        prop_assert_eq!(region.len(), (w * h) as usize);
        prop_assert!(region.is_connected());
    }

    /// The adjacency graph satisfies the handshake lemma and mirrors
    /// geometric adjacency.
    #[test]
    fn graph_handshake(w in 1u32..8, h in 1u32..8) {
        let region = Region::parallelogram(w, h);
        let g = AdjacencyGraph::from_region(&region);
        let degree_sum: usize = g.nodes().map(|(n, _)| g.degree(n)).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
        for (a, b) in g.edges() {
            prop_assert!(g.cell_of(a).is_adjacent(g.cell_of(b)));
        }
    }

    /// Boundary + interior partition every region.
    #[test]
    fn boundary_interior_partition(radius in 0u32..6) {
        let region = Region::hexagon(HexCoord::ORIGIN, radius);
        let b = region.boundary().count();
        let i = region.interior().count();
        prop_assert_eq!(b + i, region.len());
    }

    /// Rotations are distance-preserving bijections of order 6; the
    /// reflection is an involution; cw and ccw are inverses.
    #[test]
    fn symmetry_group_laws(a in arb_coord(), b in arb_coord()) {
        prop_assert_eq!(a.rotated_ccw().rotated_cw(), a);
        prop_assert_eq!(a.reflected().reflected(), a);
        prop_assert_eq!(a.rotated_ccw().distance(b.rotated_ccw()), a.distance(b));
        prop_assert_eq!(a.reflected().distance(b.reflected()), a.distance(b));
        let mut six = a;
        for _ in 0..6 {
            six = six.rotated_ccw();
        }
        prop_assert_eq!(six, a);
        // Rotation about a center fixes the center.
        prop_assert_eq!(b.rotated_ccw_around(b), b);
        prop_assert_eq!(a.rotated_ccw_around(b).distance(b), a.distance(b));
    }

    /// Region transforms under lattice symmetries preserve cardinality,
    /// connectivity, and interior size.
    #[test]
    fn region_symmetry_invariants(w in 2u32..8, h in 2u32..8) {
        let region = Region::parallelogram(w, h);
        let rotated = region.transformed(HexCoord::rotated_ccw);
        prop_assert_eq!(rotated.len(), region.len());
        prop_assert!(rotated.is_connected());
        prop_assert_eq!(
            rotated.interior().count(),
            region.interior().count()
        );
        let reflected = region.transformed(HexCoord::reflected);
        prop_assert_eq!(reflected.len(), region.len());
        prop_assert_eq!(reflected.boundary().count(), region.boundary().count());
    }
}
