//! The `Topology` abstraction: any finite cell set with an adjacency
//! relation.
//!
//! The paper evaluates redundancy schemes on two lattices — hexagonal
//! electrodes (6-adjacency, the DTMB designs) and square electrodes
//! (4-adjacency, the fabricated chip and the spare-row baseline). Every
//! downstream consumer (defect injection, reconfiguration structure
//! compilation, Monte-Carlo evaluation) only ever needs three things from
//! the geometry: deterministic cell iteration, membership, and in-region
//! neighbour iteration. [`Topology`] captures exactly that, so the fast
//! reconfiguration engine can be written once and ride on either lattice
//! (or any future one).

use crate::{HexCoord, Region, SquareCoord, SquareRegion};
use std::fmt;

/// A finite set of cells with an adjacency relation — the geometric
/// substrate a redundancy scheme is instantiated on.
///
/// Implementations must be deterministic: [`Topology::cells_iter`] yields
/// cells in a fixed (sorted) order, and [`Topology::neighbors_of`] yields
/// only cells that are part of the topology. Both properties are what let
/// Monte-Carlo experiments be byte-reproducible across runs and thread
/// counts.
///
/// # Example
///
/// ```
/// use dmfb_grid::{Region, SquareRegion, Topology};
///
/// let hex = Region::parallelogram(4, 4);
/// assert_eq!(hex.cell_count(), 16);
/// assert_eq!(hex.full_degree(), 6);
///
/// let square = SquareRegion::rect(4, 4);
/// assert_eq!(square.cell_count(), 16);
/// assert_eq!(square.full_degree(), 4);
/// ```
pub trait Topology {
    /// The coordinate type of a cell on this topology.
    type Coord: Copy + Ord + Eq + fmt::Debug + Send + Sync;

    /// Number of cells in the topology.
    fn cell_count(&self) -> usize;

    /// Whether `cell` belongs to the topology.
    fn contains_cell(&self, cell: Self::Coord) -> bool;

    /// The lattice degree of an unobstructed interior cell (6 on the
    /// hexagonal lattice, 4 on the square lattice). Cells with fewer
    /// in-topology neighbours are boundary cells.
    fn full_degree(&self) -> usize;

    /// Iterates every cell in sorted (deterministic) order.
    fn cells_iter(&self) -> impl Iterator<Item = Self::Coord> + '_;

    /// Iterates the in-topology neighbours of `cell`.
    fn neighbors_of(&self, cell: Self::Coord) -> impl Iterator<Item = Self::Coord> + '_;

    /// In-topology degree of `cell`.
    fn degree_of(&self, cell: Self::Coord) -> usize {
        self.neighbors_of(cell).count()
    }

    /// Whether `cell` has the full complement of neighbours (i.e. is not
    /// on the topology boundary).
    fn is_interior_cell(&self, cell: Self::Coord) -> bool {
        self.degree_of(cell) == self.full_degree()
    }
}

impl Topology for Region {
    type Coord = HexCoord;

    fn cell_count(&self) -> usize {
        self.len()
    }

    fn contains_cell(&self, cell: HexCoord) -> bool {
        self.contains(cell)
    }

    fn full_degree(&self) -> usize {
        6
    }

    fn cells_iter(&self) -> impl Iterator<Item = HexCoord> + '_ {
        self.iter()
    }

    fn neighbors_of(&self, cell: HexCoord) -> impl Iterator<Item = HexCoord> + '_ {
        self.neighbors_in(cell)
    }
}

impl Topology for SquareRegion {
    type Coord = SquareCoord;

    fn cell_count(&self) -> usize {
        self.len()
    }

    fn contains_cell(&self, cell: SquareCoord) -> bool {
        self.contains(cell)
    }

    fn full_degree(&self) -> usize {
        4
    }

    fn cells_iter(&self) -> impl Iterator<Item = SquareCoord> + '_ {
        self.iter()
    }

    fn neighbors_of(&self, cell: SquareCoord) -> impl Iterator<Item = SquareCoord> + '_ {
        self.neighbors_in(cell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interior_count<T: Topology>(topo: &T) -> usize {
        topo.cells_iter()
            .filter(|c| topo.is_interior_cell(*c))
            .count()
    }

    #[test]
    fn hex_region_topology() {
        let region = Region::hexagon(HexCoord::ORIGIN, 2);
        assert_eq!(region.cell_count(), 19);
        assert_eq!(region.full_degree(), 6);
        assert!(region.contains_cell(HexCoord::ORIGIN));
        assert_eq!(region.degree_of(HexCoord::ORIGIN), 6);
        assert!(region.is_interior_cell(HexCoord::ORIGIN));
        // Interior of a radius-2 hexagon is the radius-1 hexagon.
        assert_eq!(interior_count(&region), 7);
        // Topology iteration matches the region's sorted order.
        let a: Vec<_> = region.cells_iter().collect();
        let b: Vec<_> = region.iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn square_region_topology() {
        let region = SquareRegion::rect(4, 3);
        assert_eq!(region.cell_count(), 12);
        assert_eq!(region.full_degree(), 4);
        let corner = SquareCoord::new(0, 0);
        assert_eq!(region.degree_of(corner), 2);
        assert!(!region.is_interior_cell(corner));
        assert!(region.is_interior_cell(SquareCoord::new(1, 1)));
        assert_eq!(interior_count(&region), 2);
    }

    #[test]
    fn neighbors_stay_inside() {
        let region = SquareRegion::rect(3, 3);
        for c in region.cells_iter() {
            for n in region.neighbors_of(c) {
                assert!(region.contains_cell(n));
            }
        }
    }
}
