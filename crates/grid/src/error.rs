//! Error types for lattice operations.

use crate::HexCoord;
use std::error::Error;
use std::fmt;

/// Errors raised by geometric operations on biochip regions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum GridError {
    /// The referenced cell is not part of the region.
    CellNotInRegion(HexCoord),
    /// Two cells that were required to be adjacent are not.
    NotAdjacent(HexCoord, HexCoord),
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::CellNotInRegion(c) => write!(f, "cell {c} is not in the region"),
            GridError::NotAdjacent(a, b) => write!(f, "cells {a} and {b} are not adjacent"),
        }
    }
}

impl Error for GridError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GridError::CellNotInRegion(HexCoord::new(1, 2));
        assert_eq!(e.to_string(), "cell (1, 2) is not in the region");
        let e = GridError::NotAdjacent(HexCoord::new(0, 0), HexCoord::new(2, 2));
        assert!(e.to_string().contains("not adjacent"));
    }
}
