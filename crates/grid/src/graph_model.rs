//! Graph model of a microfluidic array (paper Figure 3(b)).
//!
//! The paper derives a graph from the array in which every cell is a node
//! and an edge connects two nodes iff the corresponding cells are physically
//! adjacent. This module builds that graph for any [`Region`] and exposes it
//! with stable integer node identifiers, suitable for handing to the
//! matching algorithms in `dmfb-graph`.

use crate::{HexCoord, Region};
use std::collections::BTreeMap;

/// Stable index of a cell inside an [`AdjacencyGraph`].
///
/// Node ids are assigned in sorted cell order, so a given region always
/// produces the same numbering.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub usize);

/// Undirected adjacency graph of a cell region.
///
/// # Example
///
/// ```
/// use dmfb_grid::{AdjacencyGraph, HexCoord, Region};
///
/// let graph = AdjacencyGraph::from_region(&Region::parallelogram(3, 3));
/// assert_eq!(graph.node_count(), 9);
/// let center = graph.node_of(HexCoord::new(1, 1)).unwrap();
/// assert_eq!(graph.degree(center), 6);
/// ```
#[derive(Clone, Debug)]
pub struct AdjacencyGraph {
    cells: Vec<HexCoord>,
    index: BTreeMap<HexCoord, NodeId>,
    adjacency: Vec<Vec<NodeId>>,
}

impl AdjacencyGraph {
    /// Builds the adjacency graph of `region`.
    #[must_use]
    pub fn from_region(region: &Region) -> Self {
        let cells: Vec<HexCoord> = region.iter().collect();
        let index: BTreeMap<HexCoord, NodeId> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| (*c, NodeId(i)))
            .collect();
        let adjacency = cells
            .iter()
            .map(|c| {
                c.neighbors()
                    .filter_map(|n| index.get(&n).copied())
                    .collect()
            })
            .collect();
        AdjacencyGraph {
            cells,
            index,
            adjacency,
        }
    }

    /// Number of nodes (cells).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of undirected edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// The node id of `cell`, if the cell is part of the graph.
    #[must_use]
    pub fn node_of(&self, cell: HexCoord) -> Option<NodeId> {
        self.index.get(&cell).copied()
    }

    /// The cell behind a node id.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range for this graph.
    #[must_use]
    pub fn cell_of(&self, node: NodeId) -> HexCoord {
        self.cells[node.0]
    }

    /// Neighbouring node ids of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range for this graph.
    #[must_use]
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.adjacency[node.0]
    }

    /// Degree of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range for this graph.
    #[must_use]
    pub fn degree(&self, node: NodeId) -> usize {
        self.adjacency[node.0].len()
    }

    /// Iterates `(NodeId, HexCoord)` pairs in id order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, HexCoord)> + '_ {
        self.cells.iter().enumerate().map(|(i, c)| (NodeId(i), *c))
    }

    /// Iterates undirected edges as `(NodeId, NodeId)` with `a < b`, each
    /// edge reported once, in deterministic order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.adjacency.iter().enumerate().flat_map(|(i, nbrs)| {
            nbrs.iter()
                .filter(move |n| n.0 > i)
                .map(move |n| (NodeId(i), *n))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_of_parallelogram() {
        let region = Region::parallelogram(3, 3);
        let g = AdjacencyGraph::from_region(&region);
        assert_eq!(g.node_count(), 9);
        // Center cell has all 6 neighbours inside.
        let center = g.node_of(HexCoord::new(1, 1)).unwrap();
        assert_eq!(g.degree(center), 6);
        // Handshake: sum of degrees = 2 * edges.
        let total: usize = (0..g.node_count()).map(|i| g.degree(NodeId(i))).sum();
        assert_eq!(total, 2 * g.edge_count());
    }

    #[test]
    fn node_ids_are_stable_sorted_order() {
        let region = Region::parallelogram(2, 2);
        let g1 = AdjacencyGraph::from_region(&region);
        let g2 = AdjacencyGraph::from_region(&region);
        for (a, b) in g1.nodes().zip(g2.nodes()) {
            assert_eq!(a, b);
        }
        // Sorted order means node 0 is the smallest coordinate.
        assert_eq!(g1.cell_of(NodeId(0)), region.iter().next().unwrap());
    }

    #[test]
    fn edges_unique_and_symmetric() {
        let region = Region::hexagon(HexCoord::ORIGIN, 2);
        let g = AdjacencyGraph::from_region(&region);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), g.edge_count());
        for (a, b) in edges {
            assert!(a < b);
            assert!(g.neighbors(a).contains(&b));
            assert!(g.neighbors(b).contains(&a));
            assert!(g.cell_of(a).is_adjacent(g.cell_of(b)));
        }
    }

    #[test]
    fn missing_cell_has_no_node() {
        let g = AdjacencyGraph::from_region(&Region::parallelogram(2, 1));
        assert!(g.node_of(HexCoord::new(9, 9)).is_none());
    }
}
