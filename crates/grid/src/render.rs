//! ASCII rendering of biochip arrays.
//!
//! The figure-generator binaries print array layouts (spare patterns,
//! defect maps, reconfiguration plans) as text. Hexagonal arrays are drawn
//! with one text row per lattice row `r` and a half-cell indentation per
//! row, which preserves the six-neighbour adjacency visually.

use crate::{CellMap, HexCoord, Region, SquareCoord, SquareRegion};

/// Renders a hexagonal region, one glyph per cell, using `glyph` to choose
/// the character for each coordinate.
///
/// Rows are lattice rows of constant `r`; each row is indented by one extra
/// column per `r` step so that neighbours touch visually. Cells outside the
/// region print as spaces.
///
/// # Example
///
/// ```
/// use dmfb_grid::{Region, render};
///
/// let region = Region::parallelogram(3, 2);
/// let art = render::hex(&region, |_| '*');
/// assert_eq!(art.lines().count(), 2);
/// ```
pub fn hex(region: &Region, mut glyph: impl FnMut(HexCoord) -> char) -> String {
    let Some((lo, hi)) = region.bounds() else {
        return String::new();
    };
    let mut out = String::new();
    for r in lo.r..=hi.r {
        let mut line = String::new();
        // Half-cell shear: row r starts (r - lo.r) half-steps to the right.
        let indent = (r - lo.r) as usize;
        line.extend(std::iter::repeat_n(' ', indent));
        for q in lo.q..=hi.q {
            let c = HexCoord::new(q, r);
            if region.contains(c) {
                line.push(glyph(c));
            } else {
                line.push(' ');
            }
            line.push(' ');
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// Renders a hexagonal region using a payload map; cells missing from the
/// map (but inside the region) print as `default`.
pub fn hex_map<T>(
    region: &Region,
    map: &CellMap<T>,
    mut glyph: impl FnMut(&T) -> char,
    default: char,
) -> String {
    hex(region, |c| map.get(c).map_or(default, &mut glyph))
}

/// Renders a square region, one glyph per cell, row by row.
pub fn square(region: &SquareRegion, mut glyph: impl FnMut(SquareCoord) -> char) -> String {
    let cells: Vec<SquareCoord> = region.iter().collect();
    if cells.is_empty() {
        return String::new();
    }
    let xmin = cells.iter().map(|c| c.x).min().expect("non-empty");
    let xmax = cells.iter().map(|c| c.x).max().expect("non-empty");
    let ymin = cells.iter().map(|c| c.y).min().expect("non-empty");
    let ymax = cells.iter().map(|c| c.y).max().expect("non-empty");
    let mut out = String::new();
    for y in ymin..=ymax {
        let mut line = String::new();
        for x in xmin..=xmax {
            let c = SquareCoord::new(x, y);
            if region.contains(c) {
                line.push(glyph(c));
            } else {
                line.push(' ');
            }
            line.push(' ');
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_renders_rows() {
        let region = Region::parallelogram(3, 2);
        let art = hex(&region, |_| 'o');
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].trim(), "o o o");
        // second row indented one half-step
        assert!(lines[1].starts_with(' '));
    }

    #[test]
    fn hex_glyph_sees_coordinates() {
        let region = Region::parallelogram(2, 1);
        let art = hex(&region, |c| if c.q == 0 { 'a' } else { 'b' });
        assert!(art.contains('a') && art.contains('b'));
    }

    #[test]
    fn hex_map_uses_default_for_missing() {
        let region = Region::parallelogram(2, 1);
        let mut map = CellMap::new();
        map.insert(HexCoord::new(0, 0), 7);
        let art = hex_map(&region, &map, |_| 'x', '.');
        assert!(art.contains('x') && art.contains('.'));
    }

    #[test]
    fn empty_regions_render_empty() {
        assert_eq!(hex(&Region::new(), |_| 'o'), "");
        assert_eq!(square(&SquareRegion::new(), |_| 'o'), "");
    }

    #[test]
    fn square_renders_grid() {
        let region = SquareRegion::rect(3, 2);
        let art = square(&region, |_| '#');
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "# # #");
    }
}
