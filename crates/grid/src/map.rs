//! Per-cell payload storage over a region.

use crate::{HexCoord, Region};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A map from cells to values with deterministic iteration order.
///
/// `CellMap` is the workhorse container for anything that annotates an
/// array: cell roles (primary/spare), fault states, droplet occupancy,
/// parametric deviations. It is backed by a `BTreeMap` so that iteration is
/// sorted — Monte-Carlo experiments must be bit-for-bit reproducible given a
/// seed, which rules out randomized iteration order.
///
/// The map is generic over the cell coordinate type `C` so the same storage
/// serves the hexagonal lattice ([`HexCoord`], the default) and the square
/// lattice ([`crate::SquareCoord`]).
///
/// # Example
///
/// ```
/// use dmfb_grid::{CellMap, HexCoord};
///
/// let mut occupancy: CellMap<bool> = CellMap::new();
/// occupancy.insert(HexCoord::new(0, 0), true);
/// assert_eq!(occupancy.get(HexCoord::new(0, 0)), Some(&true));
/// assert_eq!(occupancy.get(HexCoord::new(1, 0)), None);
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellMap<T, C: Ord + Copy = HexCoord> {
    inner: BTreeMap<C, T>,
}

impl<T, C: Ord + Copy> Default for CellMap<T, C> {
    fn default() -> Self {
        CellMap {
            inner: BTreeMap::new(),
        }
    }
}

impl<T: fmt::Debug, C: Ord + Copy + fmt::Debug> fmt::Debug for CellMap<T, C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.inner.iter()).finish()
    }
}

impl<T, C: Ord + Copy> CellMap<T, C> {
    /// Creates an empty map.
    #[must_use]
    pub fn new() -> Self {
        CellMap {
            inner: BTreeMap::new(),
        }
    }

    /// Number of mapped cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether no cells are mapped.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// The value at `cell`, if mapped.
    #[must_use]
    pub fn get(&self, cell: C) -> Option<&T> {
        self.inner.get(&cell)
    }

    /// Mutable access to the value at `cell`, if mapped.
    pub fn get_mut(&mut self, cell: C) -> Option<&mut T> {
        self.inner.get_mut(&cell)
    }

    /// Whether `cell` is mapped.
    #[must_use]
    pub fn contains(&self, cell: C) -> bool {
        self.inner.contains_key(&cell)
    }

    /// Maps `cell` to `value`, returning the previous value if any.
    pub fn insert(&mut self, cell: C, value: T) -> Option<T> {
        self.inner.insert(cell, value)
    }

    /// Removes the mapping for `cell`, returning its value if present.
    pub fn remove(&mut self, cell: C) -> Option<T> {
        self.inner.remove(&cell)
    }

    /// Iterates `(cell, &value)` in sorted cell order.
    pub fn iter(&self) -> impl Iterator<Item = (C, &T)> {
        self.inner.iter().map(|(c, v)| (*c, v))
    }

    /// Iterates `(cell, &mut value)` in sorted cell order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (C, &mut T)> {
        self.inner.iter_mut().map(|(c, v)| (*c, v))
    }

    /// Iterates the mapped cells in sorted order.
    pub fn cells(&self) -> impl Iterator<Item = C> + '_ {
        self.inner.keys().copied()
    }

    /// Iterates the values in sorted cell order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.inner.values()
    }

    /// The cells whose value satisfies `pred`, in sorted order.
    pub fn cells_where<'a>(
        &'a self,
        mut pred: impl FnMut(&T) -> bool + 'a,
    ) -> impl Iterator<Item = C> + 'a {
        self.inner
            .iter()
            .filter(move |(_, v)| pred(v))
            .map(|(c, _)| *c)
    }
}

impl<T> CellMap<T, HexCoord> {
    /// Fills every cell of `region` with values produced by `f`.
    pub fn from_region_with(region: &Region, mut f: impl FnMut(HexCoord) -> T) -> Self {
        CellMap {
            inner: region.iter().map(|c| (c, f(c))).collect(),
        }
    }
}

impl<T, C: Ord + Copy> FromIterator<(C, T)> for CellMap<T, C> {
    fn from_iter<I: IntoIterator<Item = (C, T)>>(iter: I) -> Self {
        CellMap {
            inner: iter.into_iter().collect(),
        }
    }
}

impl<T, C: Ord + Copy> Extend<(C, T)> for CellMap<T, C> {
    fn extend<I: IntoIterator<Item = (C, T)>>(&mut self, iter: I) {
        self.inner.extend(iter);
    }
}

impl<'a, T, C: Ord + Copy> IntoIterator for &'a CellMap<T, C> {
    type Item = (&'a C, &'a T);
    type IntoIter = std::collections::btree_map::Iter<'a, C, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

impl<T, C: Ord + Copy> IntoIterator for CellMap<T, C> {
    type Item = (C, T);
    type IntoIter = std::collections::btree_map::IntoIter<C, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SquareCoord;

    #[test]
    fn basic_crud() {
        let mut m = CellMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(HexCoord::new(0, 0), 1), None);
        assert_eq!(m.insert(HexCoord::new(0, 0), 2), Some(1));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(HexCoord::new(0, 0)), Some(&2));
        *m.get_mut(HexCoord::new(0, 0)).unwrap() += 1;
        assert_eq!(m.remove(HexCoord::new(0, 0)), Some(3));
        assert!(m.get(HexCoord::new(0, 0)).is_none());
    }

    #[test]
    fn from_region_with_covers_region() {
        let region = Region::parallelogram(3, 3);
        let m = CellMap::from_region_with(&region, |c| c.q + c.r);
        assert_eq!(m.len(), region.len());
        for c in region.iter() {
            assert_eq!(m.get(c), Some(&(c.q + c.r)));
        }
    }

    #[test]
    fn cells_where_filters() {
        let region = Region::parallelogram(4, 1);
        let m = CellMap::from_region_with(&region, |c| c.q % 2 == 0);
        let even: Vec<_> = m.cells_where(|v| *v).collect();
        assert_eq!(even, vec![HexCoord::new(0, 0), HexCoord::new(2, 0)]);
    }

    #[test]
    fn iteration_sorted() {
        let mut m = CellMap::new();
        m.insert(HexCoord::new(5, 0), "b");
        m.insert(HexCoord::new(0, 0), "a");
        let cells: Vec<_> = m.cells().collect();
        assert_eq!(cells, vec![HexCoord::new(0, 0), HexCoord::new(5, 0)]);
        let vals: Vec<_> = m.values().copied().collect();
        assert_eq!(vals, vec!["a", "b"]);
    }

    #[test]
    fn collect_and_extend() {
        let mut m: CellMap<i32> = [(HexCoord::new(0, 0), 1)].into_iter().collect();
        m.extend([(HexCoord::new(1, 0), 2)]);
        assert_eq!(m.len(), 2);
        let pairs: Vec<_> = m.into_iter().collect();
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn square_coordinates_work_too() {
        let mut m: CellMap<u8, SquareCoord> = CellMap::new();
        m.insert(SquareCoord::new(1, 2), 7);
        assert_eq!(m.get(SquareCoord::new(1, 2)), Some(&7));
        assert!(m.contains(SquareCoord::new(1, 2)));
        assert_eq!(m.cells().count(), 1);
    }
}
