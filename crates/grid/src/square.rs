//! Square-electrode lattice, used by earlier-generation biochips.
//!
//! The fabricated multiplexed-diagnostics chip of the paper's Section 7
//! (Figure 11) uses conventional square electrodes where a droplet can move
//! in four directions. The spare-row "shifted replacement" baseline of
//! Figure 2 is also formulated on a square array.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;
use std::ops::{Add, Sub};

/// A cell position on the square lattice.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SquareCoord {
    /// Column index.
    pub x: i32,
    /// Row index.
    pub y: i32,
}

impl fmt::Debug for SquareCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sq({}, {})", self.x, self.y)
    }
}

impl fmt::Display for SquareCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// The four droplet transport directions on a square-electrode array.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum SquareDir {
    /// `(0, -1)`
    North,
    /// `(0, +1)`
    South,
    /// `(+1, 0)`
    East,
    /// `(-1, 0)`
    West,
}

impl SquareDir {
    /// All four directions in a fixed order.
    pub const ALL: [SquareDir; 4] = [
        SquareDir::North,
        SquareDir::East,
        SquareDir::South,
        SquareDir::West,
    ];

    /// The `(dx, dy)` offset of this direction.
    #[must_use]
    pub const fn offset(self) -> (i32, i32) {
        match self {
            SquareDir::North => (0, -1),
            SquareDir::South => (0, 1),
            SquareDir::East => (1, 0),
            SquareDir::West => (-1, 0),
        }
    }

    /// The opposite direction.
    #[must_use]
    pub const fn opposite(self) -> SquareDir {
        match self {
            SquareDir::North => SquareDir::South,
            SquareDir::South => SquareDir::North,
            SquareDir::East => SquareDir::West,
            SquareDir::West => SquareDir::East,
        }
    }
}

impl SquareCoord {
    /// Creates a coordinate.
    #[must_use]
    pub const fn new(x: i32, y: i32) -> Self {
        SquareCoord { x, y }
    }

    /// The cell one step away in direction `dir`.
    #[must_use]
    pub fn step(self, dir: SquareDir) -> SquareCoord {
        let (dx, dy) = dir.offset();
        SquareCoord::new(self.x + dx, self.y + dy)
    }

    /// The four edge-adjacent cells (droplet transport neighbours).
    pub fn neighbors4(self) -> impl Iterator<Item = SquareCoord> {
        SquareDir::ALL.into_iter().map(move |d| self.step(d))
    }

    /// The eight surrounding cells, including diagonals. Diagonal adjacency
    /// matters for *fluidic constraints*: two independent droplets must not
    /// occupy diagonally adjacent electrodes or they may merge.
    pub fn neighbors8(self) -> impl Iterator<Item = SquareCoord> {
        let deltas = [
            (0, -1),
            (1, -1),
            (1, 0),
            (1, 1),
            (0, 1),
            (-1, 1),
            (-1, 0),
            (-1, -1),
        ];
        deltas
            .into_iter()
            .map(move |(dx, dy)| SquareCoord::new(self.x + dx, self.y + dy))
    }

    /// Manhattan distance: minimum droplet moves on an unobstructed array.
    #[must_use]
    pub fn manhattan(self, other: SquareCoord) -> u32 {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }

    /// Whether `other` is edge-adjacent (4-neighbourhood).
    #[must_use]
    pub fn is_adjacent4(self, other: SquareCoord) -> bool {
        self.manhattan(other) == 1
    }

    /// Whether `other` is within the 8-neighbourhood (excludes `self`).
    #[must_use]
    pub fn is_adjacent8(self, other: SquareCoord) -> bool {
        self != other && self.x.abs_diff(other.x) <= 1 && self.y.abs_diff(other.y) <= 1
    }
}

impl Add for SquareCoord {
    type Output = SquareCoord;
    fn add(self, rhs: SquareCoord) -> SquareCoord {
        SquareCoord::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for SquareCoord {
    type Output = SquareCoord;
    fn sub(self, rhs: SquareCoord) -> SquareCoord {
        SquareCoord::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl From<(i32, i32)> for SquareCoord {
    fn from((x, y): (i32, i32)) -> Self {
        SquareCoord::new(x, y)
    }
}

/// A finite set of square cells with deterministic iteration.
#[derive(Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SquareRegion {
    cells: BTreeSet<SquareCoord>,
}

impl fmt::Debug for SquareRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SquareRegion({} cells)", self.cells.len())
    }
}

impl SquareRegion {
    /// Creates an empty region.
    #[must_use]
    pub fn new() -> Self {
        SquareRegion::default()
    }

    /// An axis-aligned rectangle `x in [0, width)`, `y in [0, height)`.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` would overflow `i32`.
    #[must_use]
    pub fn rect(width: u32, height: u32) -> Self {
        let w = i32::try_from(width).expect("width fits in i32");
        let h = i32::try_from(height).expect("height fits in i32");
        SquareRegion {
            cells: (0..w)
                .flat_map(|x| (0..h).map(move |y| SquareCoord::new(x, y)))
                .collect(),
        }
    }

    /// Number of cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the region is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Membership test.
    #[must_use]
    pub fn contains(&self, c: SquareCoord) -> bool {
        self.cells.contains(&c)
    }

    /// Inserts a cell; returns `true` if newly added.
    pub fn insert(&mut self, c: SquareCoord) -> bool {
        self.cells.insert(c)
    }

    /// Removes a cell; returns `true` if it was present.
    pub fn remove(&mut self, c: SquareCoord) -> bool {
        self.cells.remove(&c)
    }

    /// Sorted iteration over cells.
    pub fn iter(&self) -> impl Iterator<Item = SquareCoord> + '_ {
        self.cells.iter().copied()
    }

    /// In-region 4-neighbours of a cell.
    pub fn neighbors_in(&self, c: SquareCoord) -> impl Iterator<Item = SquareCoord> + '_ {
        c.neighbors4().filter(|n| self.contains(*n))
    }
}

impl FromIterator<SquareCoord> for SquareRegion {
    fn from_iter<I: IntoIterator<Item = SquareCoord>>(iter: I) -> Self {
        SquareRegion {
            cells: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn four_neighbors_distinct() {
        let c = SquareCoord::new(2, 3);
        let n: HashSet<_> = c.neighbors4().collect();
        assert_eq!(n.len(), 4);
        for x in n {
            assert!(c.is_adjacent4(x));
            assert_eq!(c.manhattan(x), 1);
        }
    }

    #[test]
    fn eight_neighbors_include_diagonals() {
        let c = SquareCoord::new(0, 0);
        let n: HashSet<_> = c.neighbors8().collect();
        assert_eq!(n.len(), 8);
        assert!(n.contains(&SquareCoord::new(1, 1)));
        assert!(c.is_adjacent8(SquareCoord::new(-1, 1)));
        assert!(!c.is_adjacent8(c));
        assert!(!c.is_adjacent4(SquareCoord::new(1, 1)));
    }

    #[test]
    fn opposite_cancels() {
        let c = SquareCoord::new(-4, 7);
        for d in SquareDir::ALL {
            assert_eq!(c.step(d).step(d.opposite()), c);
        }
    }

    #[test]
    fn rect_region() {
        let r = SquareRegion::rect(4, 3);
        assert_eq!(r.len(), 12);
        assert!(r.contains(SquareCoord::new(3, 2)));
        assert!(!r.contains(SquareCoord::new(4, 0)));
        assert_eq!(r.neighbors_in(SquareCoord::new(0, 0)).count(), 2);
        assert_eq!(r.neighbors_in(SquareCoord::new(1, 1)).count(), 4);
    }

    #[test]
    fn arithmetic() {
        let a = SquareCoord::new(1, 2) + SquareCoord::new(3, 4);
        assert_eq!(a, SquareCoord::new(4, 6));
        assert_eq!(a - SquareCoord::new(1, 2), SquareCoord::new(3, 4));
        assert_eq!(SquareCoord::from((5, 6)), SquareCoord::new(5, 6));
    }
}
