//! Hexagonal and square lattice geometry for digital microfluidic biochips.
//!
//! Digital microfluidics-based biochips (DMFBs) manipulate droplets over a
//! two-dimensional array of electrodes. The latest generation of biochips
//! studied by Su, Chakrabarty and Pamula (DATE 2005) uses *hexagonal*
//! electrodes, where a droplet can move to an adjacent cell in six possible
//! directions; earlier fabricated chips used square electrodes with four
//! neighbours.
//!
//! This crate provides the geometric substrate everything else is built on:
//!
//! * [`HexCoord`] — axial coordinates on the hexagonal lattice, with the six
//!   [`HexDir`] transport directions, distances, rings, spirals and lines.
//! * [`SquareCoord`] — integer coordinates on the square lattice with
//!   4-neighbour ([`SquareDir`]) and 8-neighbour adjacency.
//! * [`Region`] — a finite set of hexagonal cells (the biochip outline) with
//!   deterministic iteration order, boundary/interior classification and
//!   shape constructors (parallelogram, hexagon, rectangle, arbitrary sets).
//! * [`Topology`] — the abstraction over both lattices (cell iteration,
//!   membership, neighbour iteration) that redundancy schemes and the fast
//!   reconfiguration engine are generic over.
//! * [`CellMap`] — per-cell payload storage over a region, generic over the
//!   cell coordinate type.
//! * [`AdjacencyGraph`] — the paper's Figure 3(b) graph model: one node per
//!   cell, one edge per physically adjacent pair.
//! * [`render`] — ASCII rendering used by the figure generators.
//!
//! # Example
//!
//! ```
//! use dmfb_grid::{HexCoord, HexDir, Region};
//!
//! let origin = HexCoord::new(0, 0);
//! assert_eq!(origin.neighbors().count(), 6);
//! assert_eq!(origin.step(HexDir::East), HexCoord::new(1, 0));
//!
//! let chip = Region::parallelogram(4, 3);
//! assert_eq!(chip.len(), 12);
//! assert!(chip.contains(HexCoord::new(3, 2)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod graph_model;
mod hex;
mod map;
mod region;
pub mod render;
mod square;
mod topology;

pub use error::GridError;
pub use graph_model::{AdjacencyGraph, NodeId};
pub use hex::{HexCoord, HexDir, Ring};
pub use map::CellMap;
pub use region::Region;
pub use square::{SquareCoord, SquareDir, SquareRegion};
pub use topology::Topology;
