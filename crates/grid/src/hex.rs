//! Axial coordinates on the hexagonal lattice.
//!
//! We use *axial* coordinates `(q, r)` with the implicit third cube
//! coordinate `s = -q - r`. The six transport directions correspond to the
//! six electrodes adjacent to a hexagonal cell, matching Figure 1(b) of the
//! paper: a droplet can be moved to an adjacent cell in six possible
//! directions.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Neg, Sub};

/// A cell position on the hexagonal lattice in axial coordinates.
///
/// The lattice is unbounded; finite biochips are modelled by
/// [`Region`](crate::Region). Coordinates are `i32`, which is ample for any
/// fabricable electrode array.
///
/// # Example
///
/// ```
/// use dmfb_grid::{HexCoord, HexDir};
///
/// let a = HexCoord::new(2, -1);
/// let b = a.step(HexDir::SouthEast);
/// assert_eq!(b, HexCoord::new(2, 0));
/// assert_eq!(a.distance(b), 1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct HexCoord {
    /// Axial column coordinate.
    pub q: i32,
    /// Axial row coordinate.
    pub r: i32,
}

impl fmt::Debug for HexCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Hex({}, {})", self.q, self.r)
    }
}

impl fmt::Display for HexCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.q, self.r)
    }
}

/// The six droplet transport directions on a hexagonal-electrode array.
///
/// Direction names follow a "pointy-top" hex layout where rows of constant
/// `r` render as horizontal rows shifted half a cell per row.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum HexDir {
    /// `(+1, 0)`
    East,
    /// `(-1, 0)`
    West,
    /// `(+1, -1)`
    NorthEast,
    /// `(0, -1)`
    NorthWest,
    /// `(0, +1)`
    SouthEast,
    /// `(-1, +1)`
    SouthWest,
}

impl HexDir {
    /// All six directions in a fixed, deterministic order.
    pub const ALL: [HexDir; 6] = [
        HexDir::East,
        HexDir::NorthEast,
        HexDir::NorthWest,
        HexDir::West,
        HexDir::SouthWest,
        HexDir::SouthEast,
    ];

    /// The axial `(dq, dr)` offset of this direction.
    #[must_use]
    pub const fn offset(self) -> (i32, i32) {
        match self {
            HexDir::East => (1, 0),
            HexDir::West => (-1, 0),
            HexDir::NorthEast => (1, -1),
            HexDir::NorthWest => (0, -1),
            HexDir::SouthEast => (0, 1),
            HexDir::SouthWest => (-1, 1),
        }
    }

    /// The opposite transport direction.
    ///
    /// ```
    /// use dmfb_grid::HexDir;
    /// assert_eq!(HexDir::East.opposite(), HexDir::West);
    /// assert_eq!(HexDir::NorthEast.opposite(), HexDir::SouthWest);
    /// ```
    #[must_use]
    pub const fn opposite(self) -> HexDir {
        match self {
            HexDir::East => HexDir::West,
            HexDir::West => HexDir::East,
            HexDir::NorthEast => HexDir::SouthWest,
            HexDir::NorthWest => HexDir::SouthEast,
            HexDir::SouthEast => HexDir::NorthWest,
            HexDir::SouthWest => HexDir::NorthEast,
        }
    }

    /// Rotate one step counter-clockwise (60°).
    #[must_use]
    pub const fn rotate_ccw(self) -> HexDir {
        match self {
            HexDir::East => HexDir::NorthEast,
            HexDir::NorthEast => HexDir::NorthWest,
            HexDir::NorthWest => HexDir::West,
            HexDir::West => HexDir::SouthWest,
            HexDir::SouthWest => HexDir::SouthEast,
            HexDir::SouthEast => HexDir::East,
        }
    }

    /// Rotate one step clockwise (60°).
    #[must_use]
    pub const fn rotate_cw(self) -> HexDir {
        match self {
            HexDir::East => HexDir::SouthEast,
            HexDir::SouthEast => HexDir::SouthWest,
            HexDir::SouthWest => HexDir::West,
            HexDir::West => HexDir::NorthWest,
            HexDir::NorthWest => HexDir::NorthEast,
            HexDir::NorthEast => HexDir::East,
        }
    }
}

impl HexCoord {
    /// The lattice origin `(0, 0)`.
    pub const ORIGIN: HexCoord = HexCoord { q: 0, r: 0 };

    /// Creates a coordinate from axial components.
    #[must_use]
    pub const fn new(q: i32, r: i32) -> Self {
        HexCoord { q, r }
    }

    /// The implicit third cube coordinate `s = -q - r`.
    #[must_use]
    pub const fn s(self) -> i32 {
        -self.q - self.r
    }

    /// Cube-coordinate triple `(x, y, z)` with `x + y + z = 0`.
    #[must_use]
    pub const fn to_cube(self) -> (i32, i32, i32) {
        (self.q, self.s(), self.r)
    }

    /// Builds an axial coordinate from a cube triple.
    ///
    /// # Panics
    ///
    /// Panics if `x + y + z != 0`, which is not a valid cube coordinate.
    #[must_use]
    pub fn from_cube(x: i32, y: i32, z: i32) -> Self {
        assert_eq!(x + y + z, 0, "cube coordinates must satisfy x + y + z = 0");
        HexCoord { q: x, r: z }
    }

    /// The cell one step away in direction `dir`.
    #[must_use]
    pub fn step(self, dir: HexDir) -> HexCoord {
        let (dq, dr) = dir.offset();
        HexCoord::new(self.q + dq, self.r + dr)
    }

    /// The cell `n` steps away in direction `dir`.
    #[must_use]
    pub fn step_by(self, dir: HexDir, n: i32) -> HexCoord {
        let (dq, dr) = dir.offset();
        HexCoord::new(self.q + dq * n, self.r + dr * n)
    }

    /// The six physically adjacent cells, in [`HexDir::ALL`] order.
    ///
    /// Physical adjacency is what *microfluidic locality* is about: a
    /// droplet — and hence the function of a faulty cell — can only move to
    /// one of these six positions.
    pub fn neighbors(self) -> impl Iterator<Item = HexCoord> {
        HexDir::ALL.into_iter().map(move |d| self.step(d))
    }

    /// Whether `other` is one of the six adjacent cells.
    #[must_use]
    pub fn is_adjacent(self, other: HexCoord) -> bool {
        self != other && self.distance(other) == 1
    }

    /// Hex-lattice (cube) distance: the minimum number of droplet moves
    /// between two cells on an unobstructed array.
    ///
    /// ```
    /// use dmfb_grid::HexCoord;
    /// assert_eq!(HexCoord::new(0, 0).distance(HexCoord::new(2, -1)), 2);
    /// ```
    #[must_use]
    pub fn distance(self, other: HexCoord) -> u32 {
        let dq = self.q - other.q;
        let dr = self.r - other.r;
        let ds = self.s() - other.s();
        ((dq.abs() + dr.abs() + ds.abs()) / 2) as u32
    }

    /// The ring of cells at exactly `radius` steps from `self`.
    ///
    /// `radius == 0` yields just `self`. For `radius >= 1` the ring has
    /// `6 * radius` cells, returned in contiguous walk order starting from
    /// the cell `radius` steps to the west.
    #[must_use]
    pub fn ring(self, radius: u32) -> Ring {
        Ring::new(self, radius)
    }

    /// All cells within `radius` steps (a filled hexagon), in spiral order
    /// from the centre outwards. Contains `1 + 3*radius*(radius+1)` cells.
    pub fn spiral(self, radius: u32) -> impl Iterator<Item = HexCoord> {
        (0..=radius).flat_map(move |k| self.ring(k))
    }

    /// Rotates 60° counter-clockwise about the origin
    /// (cube `(x, y, z) → (−z, −x, −y)`).
    ///
    /// ```
    /// use dmfb_grid::HexCoord;
    /// let c = HexCoord::new(2, -1);
    /// let mut r = c;
    /// for _ in 0..6 { r = r.rotated_ccw(); }
    /// assert_eq!(r, c);
    /// ```
    #[must_use]
    pub fn rotated_ccw(self) -> HexCoord {
        let (x, y, z) = self.to_cube();
        HexCoord::from_cube(-z, -x, -y)
    }

    /// Rotates 60° clockwise about the origin
    /// (cube `(x, y, z) → (−y, −z, −x)`).
    #[must_use]
    pub fn rotated_cw(self) -> HexCoord {
        let (x, y, z) = self.to_cube();
        HexCoord::from_cube(-y, -z, -x)
    }

    /// Rotates 60° counter-clockwise about `center`.
    #[must_use]
    pub fn rotated_ccw_around(self, center: HexCoord) -> HexCoord {
        (self - center).rotated_ccw() + center
    }

    /// Reflects across the `q` axis (cube `(x, y, z) → (x, z, y)`): an
    /// involution that, combined with the rotations, generates the full
    /// 12-element symmetry group of the hexagonal lattice.
    #[must_use]
    pub fn reflected(self) -> HexCoord {
        let (x, y, z) = self.to_cube();
        HexCoord::from_cube(x, z, y)
    }

    /// Cells on the straight line from `self` to `other`, inclusive of both
    /// endpoints, computed by cube-coordinate interpolation and rounding.
    ///
    /// The line has `distance + 1` cells and consecutive cells are adjacent,
    /// so it is a legal droplet transport route on a fault-free array.
    #[must_use]
    pub fn line_to(self, other: HexCoord) -> Vec<HexCoord> {
        let n = self.distance(other);
        if n == 0 {
            return vec![self];
        }
        let (ax, ay, az) = self.to_cube();
        let (bx, by, bz) = other.to_cube();
        let mut out = Vec::with_capacity(n as usize + 1);
        for i in 0..=n {
            let t = f64::from(i) / f64::from(n);
            // Nudge towards b by an epsilon to break ties deterministically.
            let x = f64::from(ax) + (f64::from(bx) - f64::from(ax)) * t + 1e-6;
            let y = f64::from(ay) + (f64::from(by) - f64::from(ay)) * t + 2e-6;
            let z = f64::from(az) + (f64::from(bz) - f64::from(az)) * t - 3e-6;
            out.push(cube_round(x, y, z));
        }
        out
    }
}

/// Rounds fractional cube coordinates to the nearest lattice cell.
fn cube_round(x: f64, y: f64, z: f64) -> HexCoord {
    let mut rx = x.round();
    let mut ry = y.round();
    let mut rz = z.round();
    let dx = (rx - x).abs();
    let dy = (ry - y).abs();
    let dz = (rz - z).abs();
    if dx > dy && dx > dz {
        rx = -ry - rz;
    } else if dy > dz {
        ry = -rx - rz;
    } else {
        rz = -rx - ry;
    }
    HexCoord::from_cube(rx as i32, ry as i32, rz as i32)
}

impl Add for HexCoord {
    type Output = HexCoord;
    fn add(self, rhs: HexCoord) -> HexCoord {
        HexCoord::new(self.q + rhs.q, self.r + rhs.r)
    }
}

impl Sub for HexCoord {
    type Output = HexCoord;
    fn sub(self, rhs: HexCoord) -> HexCoord {
        HexCoord::new(self.q - rhs.q, self.r - rhs.r)
    }
}

impl Neg for HexCoord {
    type Output = HexCoord;
    fn neg(self) -> HexCoord {
        HexCoord::new(-self.q, -self.r)
    }
}

impl From<(i32, i32)> for HexCoord {
    fn from((q, r): (i32, i32)) -> Self {
        HexCoord::new(q, r)
    }
}

/// Iterator over the cells of a hexagonal ring; see [`HexCoord::ring`].
#[derive(Clone, Debug)]
pub struct Ring {
    next: Option<HexCoord>,
    dir_idx: usize,
    steps_in_dir: u32,
    radius: u32,
    emitted: u64,
    total: u64,
}

/// Walk order for rings: start west of the centre, then walk the six sides.
const RING_WALK: [HexDir; 6] = [
    HexDir::NorthEast,
    HexDir::East,
    HexDir::SouthEast,
    HexDir::SouthWest,
    HexDir::West,
    HexDir::NorthWest,
];

impl Ring {
    fn new(center: HexCoord, radius: u32) -> Self {
        let total = if radius == 0 {
            1
        } else {
            u64::from(radius) * 6
        };
        let start = if radius == 0 {
            center
        } else {
            center.step_by(HexDir::West, radius as i32)
        };
        Ring {
            next: Some(start),
            dir_idx: 0,
            steps_in_dir: 0,
            radius,
            emitted: 0,
            total,
        }
    }
}

impl Iterator for Ring {
    type Item = HexCoord;

    fn next(&mut self) -> Option<HexCoord> {
        if self.emitted >= self.total {
            return None;
        }
        let current = self.next?;
        self.emitted += 1;
        if self.emitted < self.total {
            let mut cur = current;
            let dir = RING_WALK[self.dir_idx];
            cur = cur.step(dir);
            self.steps_in_dir += 1;
            if self.steps_in_dir == self.radius {
                self.steps_in_dir = 0;
                self.dir_idx += 1;
            }
            self.next = Some(cur);
        } else {
            self.next = None;
        }
        Some(current)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.total - self.emitted) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Ring {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn six_distinct_neighbors() {
        let c = HexCoord::new(3, -2);
        let n: HashSet<_> = c.neighbors().collect();
        assert_eq!(n.len(), 6);
        assert!(!n.contains(&c));
        for x in &n {
            assert_eq!(c.distance(*x), 1);
            assert!(c.is_adjacent(*x));
        }
    }

    #[test]
    fn opposite_directions_cancel() {
        let c = HexCoord::new(-5, 9);
        for d in HexDir::ALL {
            assert_eq!(c.step(d).step(d.opposite()), c);
        }
    }

    #[test]
    fn rotation_cycles() {
        for d in HexDir::ALL {
            let mut x = d;
            for _ in 0..6 {
                x = x.rotate_ccw();
            }
            assert_eq!(x, d);
            assert_eq!(d.rotate_ccw().rotate_cw(), d);
        }
    }

    #[test]
    fn cube_invariant_holds() {
        for q in -4..=4 {
            for r in -4..=4 {
                let c = HexCoord::new(q, r);
                let (x, y, z) = c.to_cube();
                assert_eq!(x + y + z, 0);
                assert_eq!(HexCoord::from_cube(x, y, z), c);
            }
        }
    }

    #[test]
    #[should_panic(expected = "cube coordinates")]
    fn from_cube_rejects_invalid() {
        let _ = HexCoord::from_cube(1, 1, 1);
    }

    #[test]
    fn distance_is_a_metric_on_samples() {
        let pts = [
            HexCoord::new(0, 0),
            HexCoord::new(3, -1),
            HexCoord::new(-2, 4),
            HexCoord::new(5, 5),
        ];
        for a in pts {
            assert_eq!(a.distance(a), 0);
            for b in pts {
                assert_eq!(a.distance(b), b.distance(a));
                for c in pts {
                    assert!(a.distance(c) <= a.distance(b) + b.distance(c));
                }
            }
        }
    }

    #[test]
    fn ring_sizes_and_radii() {
        let c = HexCoord::new(1, 1);
        assert_eq!(c.ring(0).collect::<Vec<_>>(), vec![c]);
        for radius in 1..=4u32 {
            let ring: Vec<_> = c.ring(radius).collect();
            assert_eq!(ring.len(), (6 * radius) as usize);
            let set: HashSet<_> = ring.iter().copied().collect();
            assert_eq!(set.len(), ring.len(), "ring cells must be distinct");
            for x in &ring {
                assert_eq!(c.distance(*x), radius);
            }
            // Walk order: consecutive ring cells are adjacent, and the ring closes.
            for w in ring.windows(2) {
                assert!(w[0].is_adjacent(w[1]));
            }
            assert!(ring[ring.len() - 1].is_adjacent(ring[0]));
        }
    }

    #[test]
    fn spiral_is_filled_hexagon() {
        let c = HexCoord::ORIGIN;
        let cells: Vec<_> = c.spiral(3).collect();
        assert_eq!(cells.len(), 1 + 3 * 3 * 4);
        let set: HashSet<_> = cells.iter().copied().collect();
        assert_eq!(set.len(), cells.len());
        for x in &cells {
            assert!(c.distance(*x) <= 3);
        }
    }

    #[test]
    fn line_endpoints_adjacency_and_length() {
        let a = HexCoord::new(-2, 0);
        let b = HexCoord::new(4, -3);
        let line = a.line_to(b);
        assert_eq!(line.first(), Some(&a));
        assert_eq!(line.last(), Some(&b));
        assert_eq!(line.len() as u32, a.distance(b) + 1);
        for w in line.windows(2) {
            assert!(w[0].is_adjacent(w[1]), "line cells must be adjacent");
        }
    }

    #[test]
    fn line_degenerate() {
        let a = HexCoord::new(7, -7);
        assert_eq!(a.line_to(a), vec![a]);
    }

    #[test]
    fn arithmetic_ops() {
        let a = HexCoord::new(1, 2);
        let b = HexCoord::new(-3, 5);
        assert_eq!(a + b, HexCoord::new(-2, 7));
        assert_eq!(a - b, HexCoord::new(4, -3));
        assert_eq!(-a, HexCoord::new(-1, -2));
        assert_eq!(HexCoord::from((1, 2)), a);
    }

    #[test]
    fn display_and_debug_nonempty() {
        let a = HexCoord::new(0, 0);
        assert!(!format!("{a}").is_empty());
        assert!(!format!("{a:?}").is_empty());
    }
}
