//! Finite sets of hexagonal cells: the outline of a biochip array.

use crate::{GridError, HexCoord};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A finite set of cells on the hexagonal lattice.
///
/// A `Region` is the footprint of a microfluidic array: the set of electrode
/// positions that physically exist on the chip. It provides deterministic
/// (sorted) iteration, O(log n) membership tests, and boundary/interior
/// classification — the paper's Definition 1 constrains only *non-boundary*
/// primary cells, so the distinction matters for finite arrays.
///
/// # Example
///
/// ```
/// use dmfb_grid::{HexCoord, Region};
///
/// let region = Region::hexagon(HexCoord::ORIGIN, 2);
/// assert_eq!(region.len(), 19);
/// assert_eq!(region.interior().count(), 7);
/// ```
#[derive(Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Region {
    cells: BTreeSet<HexCoord>,
}

impl fmt::Debug for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Region({} cells)", self.cells.len())
    }
}

impl Region {
    /// Creates an empty region.
    #[must_use]
    pub fn new() -> Self {
        Region::default()
    }

    /// A parallelogram-shaped region: `q in [0, width)`, `r in [0, height)`.
    ///
    /// This is the natural "rectangle" in axial coordinates and the default
    /// array shape used by the yield experiments.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` would overflow `i32`.
    #[must_use]
    pub fn parallelogram(width: u32, height: u32) -> Self {
        let w = i32::try_from(width).expect("width fits in i32");
        let h = i32::try_from(height).expect("height fits in i32");
        let cells = (0..w)
            .flat_map(|q| (0..h).map(move |r| HexCoord::new(q, r)))
            .collect();
        Region { cells }
    }

    /// A regular hexagon of the given `radius` centred at `center`
    /// (`radius = 0` is a single cell). Contains `1 + 3*radius*(radius+1)`
    /// cells.
    #[must_use]
    pub fn hexagon(center: HexCoord, radius: u32) -> Self {
        Region {
            cells: center.spiral(radius).collect(),
        }
    }

    /// A visually rectangular region using "odd-r" offset rows: rows of
    /// constant `r`, each horizontally shifted so the rendered array is a
    /// rectangle like the fabricated chip photographs.
    #[must_use]
    pub fn rectangle(width: u32, height: u32) -> Self {
        let w = i32::try_from(width).expect("width fits in i32");
        let h = i32::try_from(height).expect("height fits in i32");
        let mut cells = BTreeSet::new();
        for r in 0..h {
            // Offset rows: shift q so columns stay roughly vertical.
            let q0 = -(r / 2);
            for q in q0..q0 + w {
                cells.insert(HexCoord::new(q, r));
            }
        }
        Region { cells }
    }

    /// Number of cells in the region.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the region contains no cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Whether `cell` belongs to the region.
    #[must_use]
    pub fn contains(&self, cell: HexCoord) -> bool {
        self.cells.contains(&cell)
    }

    /// Inserts a cell; returns `true` if it was newly added.
    pub fn insert(&mut self, cell: HexCoord) -> bool {
        self.cells.insert(cell)
    }

    /// Removes a cell; returns `true` if it was present.
    pub fn remove(&mut self, cell: HexCoord) -> bool {
        self.cells.remove(&cell)
    }

    /// Iterates over the cells in sorted (deterministic) order.
    pub fn iter(&self) -> impl Iterator<Item = HexCoord> + '_ {
        self.cells.iter().copied()
    }

    /// The neighbours of `cell` that are inside the region.
    pub fn neighbors_in(&self, cell: HexCoord) -> impl Iterator<Item = HexCoord> + '_ {
        cell.neighbors().filter(|n| self.contains(*n))
    }

    /// In-region degree of a cell: how many of its six neighbours exist.
    ///
    /// Returns an error if the cell itself is not part of the region.
    ///
    /// # Errors
    ///
    /// [`GridError::CellNotInRegion`] if `cell` is outside the region.
    pub fn degree(&self, cell: HexCoord) -> Result<usize, GridError> {
        if !self.contains(cell) {
            return Err(GridError::CellNotInRegion(cell));
        }
        Ok(self.neighbors_in(cell).count())
    }

    /// Whether `cell` lies on the region boundary (fewer than six in-region
    /// neighbours). Boundary cells are exempt from the DTMB(s, p) degree
    /// guarantee (paper Definition 1).
    ///
    /// # Errors
    ///
    /// [`GridError::CellNotInRegion`] if `cell` is outside the region.
    pub fn is_boundary(&self, cell: HexCoord) -> Result<bool, GridError> {
        Ok(self.degree(cell)? < 6)
    }

    /// Iterates over the boundary cells in sorted order.
    pub fn boundary(&self) -> impl Iterator<Item = HexCoord> + '_ {
        self.iter().filter(|c| self.neighbors_in(*c).count() < 6)
    }

    /// Iterates over interior (non-boundary) cells in sorted order.
    pub fn interior(&self) -> impl Iterator<Item = HexCoord> + '_ {
        self.iter().filter(|c| self.neighbors_in(*c).count() == 6)
    }

    /// Whether every pair of cells is connected through in-region adjacency.
    /// Droplets cannot jump over missing electrodes, so a usable biochip
    /// region must be connected. An empty region counts as connected.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        let Some(&start) = self.cells.iter().next() else {
            return true;
        };
        let mut seen = BTreeSet::new();
        seen.insert(start);
        let mut stack = vec![start];
        while let Some(c) = stack.pop() {
            for n in self.neighbors_in(c) {
                if seen.insert(n) {
                    stack.push(n);
                }
            }
        }
        seen.len() == self.cells.len()
    }

    /// Axial bounding box `((q_min, r_min), (q_max, r_max))`, or `None` for
    /// an empty region.
    #[must_use]
    pub fn bounds(&self) -> Option<(HexCoord, HexCoord)> {
        let mut it = self.cells.iter();
        let first = *it.next()?;
        let (mut qmin, mut qmax, mut rmin, mut rmax) = (first.q, first.q, first.r, first.r);
        for c in it {
            qmin = qmin.min(c.q);
            qmax = qmax.max(c.q);
            rmin = rmin.min(c.r);
            rmax = rmax.max(c.r);
        }
        Some((HexCoord::new(qmin, rmin), HexCoord::new(qmax, rmax)))
    }

    /// Returns a new region translated by `offset`.
    #[must_use]
    pub fn translated(&self, offset: HexCoord) -> Region {
        Region {
            cells: self.cells.iter().map(|c| *c + offset).collect(),
        }
    }

    /// Returns a new region with every cell mapped through `f`.
    /// If `f` is not injective on the region the result is smaller.
    #[must_use]
    pub fn transformed(&self, mut f: impl FnMut(HexCoord) -> HexCoord) -> Region {
        Region {
            cells: self.cells.iter().map(|c| f(*c)).collect(),
        }
    }

    /// The set difference `self \ other`.
    #[must_use]
    pub fn difference(&self, other: &Region) -> Region {
        Region {
            cells: self.cells.difference(&other.cells).copied().collect(),
        }
    }

    /// The set union.
    #[must_use]
    pub fn union(&self, other: &Region) -> Region {
        Region {
            cells: self.cells.union(&other.cells).copied().collect(),
        }
    }

    /// The set intersection.
    #[must_use]
    pub fn intersection(&self, other: &Region) -> Region {
        Region {
            cells: self.cells.intersection(&other.cells).copied().collect(),
        }
    }
}

impl FromIterator<HexCoord> for Region {
    fn from_iter<I: IntoIterator<Item = HexCoord>>(iter: I) -> Self {
        Region {
            cells: iter.into_iter().collect(),
        }
    }
}

impl Extend<HexCoord> for Region {
    fn extend<I: IntoIterator<Item = HexCoord>>(&mut self, iter: I) {
        self.cells.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Region {
    type Item = HexCoord;
    type IntoIter = std::iter::Copied<std::collections::btree_set::Iter<'a, HexCoord>>;
    fn into_iter(self) -> Self::IntoIter {
        self.cells.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelogram_counts() {
        let region = Region::parallelogram(5, 4);
        assert_eq!(region.len(), 20);
        assert!(region.contains(HexCoord::new(0, 0)));
        assert!(region.contains(HexCoord::new(4, 3)));
        assert!(!region.contains(HexCoord::new(5, 0)));
        assert!(region.is_connected());
    }

    #[test]
    fn hexagon_counts_and_interior() {
        let region = Region::hexagon(HexCoord::ORIGIN, 3);
        assert_eq!(region.len(), 1 + 3 * 3 * 4);
        // Interior of a radius-3 hexagon is the radius-2 hexagon.
        assert_eq!(region.interior().count(), 1 + 3 * 2 * 3);
        assert_eq!(region.boundary().count(), 18);
    }

    #[test]
    fn rectangle_is_connected_with_full_rows() {
        let region = Region::rectangle(6, 5);
        assert_eq!(region.len(), 30);
        assert!(region.is_connected());
        // every row has exactly 6 cells
        for r in 0..5 {
            assert_eq!(region.iter().filter(|c| c.r == r).count(), 6);
        }
    }

    #[test]
    fn degree_and_boundary() {
        let region = Region::parallelogram(3, 3);
        // corner (0,0) has neighbours (1,0) and (0,1) in the parallelogram.
        assert_eq!(region.degree(HexCoord::new(0, 0)).unwrap(), 2);
        assert!(region.is_boundary(HexCoord::new(0, 0)).unwrap());
        assert!(!region.is_boundary(HexCoord::new(1, 1)).unwrap());
        assert!(region.degree(HexCoord::new(9, 9)).is_err());
    }

    #[test]
    fn connectivity_detects_split() {
        let mut region = Region::new();
        region.insert(HexCoord::new(0, 0));
        region.insert(HexCoord::new(5, 5));
        assert!(!region.is_connected());
        assert!(Region::new().is_connected());
    }

    #[test]
    fn set_operations() {
        let a = Region::parallelogram(3, 1);
        let b = Region::parallelogram(2, 2);
        assert_eq!(a.union(&b).len(), 3 + 4 - 2);
        assert_eq!(a.intersection(&b).len(), 2);
        assert_eq!(a.difference(&b).len(), 1);
    }

    #[test]
    fn translation_preserves_shape() {
        let a = Region::hexagon(HexCoord::ORIGIN, 2);
        let b = a.translated(HexCoord::new(10, -4));
        assert_eq!(a.len(), b.len());
        assert!(b.contains(HexCoord::new(10, -4)));
        assert_eq!(b.interior().count(), a.interior().count());
    }

    #[test]
    fn bounds() {
        let region = Region::parallelogram(4, 2);
        let (lo, hi) = region.bounds().unwrap();
        assert_eq!(lo, HexCoord::new(0, 0));
        assert_eq!(hi, HexCoord::new(3, 1));
        assert!(Region::new().bounds().is_none());
    }

    #[test]
    fn iteration_is_sorted_and_deterministic() {
        let region = Region::hexagon(HexCoord::new(2, 2), 2);
        let v: Vec<_> = region.iter().collect();
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(v, sorted);
    }
}
