//! `dmfb serve`: a long-lived yield-estimation daemon.
//!
//! The CLI pays the full cost of every estimate on every invocation:
//! process start, array construction, CSR/neighbour precomputation, then
//! the trials. For interactive exploration (sweeping seeds or survival
//! probabilities against a fixed design) almost all of that work is
//! identical between calls. This crate keeps it alive instead:
//!
//! * an [`LruCache`] of precomputed [`CachedEngine`]s keyed by the
//!   request's canonical engine key, so repeat requests skip evaluator
//!   construction entirely and go straight to the trials;
//! * a fixed pool of worker threads sharing the cache, each reusing the
//!   `dmfb_sim` parallel engine for the trials themselves;
//! * hand-rolled HTTP/1.1 + JSON over [`std::net`] (the workspace is
//!   offline; no web framework, no TLS, loopback use intended).
//!
//! **Determinism contract:** identical request bodies produce
//! byte-identical reply bodies, no matter which worker serves them, how
//! many threads the engines run with, whether the engine was cached, or
//! what ran before. Everything request-dependent is seeded from the
//! request's own master seed through a `SeedSequence`; everything
//! timing-dependent (cache outcome, service micros) travels in response
//! headers, never in the body.
//!
//! Endpoints:
//!
//! * `POST /v1/yield` — run one estimate; see
//!   [`request::parse_yield_request`] for the body vocabulary.
//! * `GET /v1/health` — liveness plus cache statistics.
//! * `POST /v1/shutdown` — graceful stop: in-flight and queued requests
//!   finish, workers join, the acceptor exits.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cache;
pub mod engine;
pub mod http;
pub mod request;
pub mod soak;

pub use cache::{CacheOutcome, CacheStats, LruCache};
pub use engine::CachedEngine;
pub use request::{parse_yield_request, RequestError, YieldRequest};
pub use soak::{run_soak, SoakConfig, SoakReport};

use http::{read_request, write_response, HttpRequest};
use request::CacheMode;
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Reply-body schema label, bumped with any body-shape change.
pub const SERVE_SCHEMA: &str = "dmfb-serve/1";

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:8750` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads accepting connections off the shared queue.
    pub workers: usize,
    /// Threads each *engine* runs its trials with (`0` = one per core).
    /// The default is 1: with a worker pool in front, request-level
    /// concurrency is usually the better use of the cores, and replies
    /// are byte-identical either way.
    pub threads: usize,
    /// Engine-cache capacity (entries).
    pub cache_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:8750".into(),
            workers: 4,
            threads: 1,
            cache_capacity: 32,
        }
    }
}

/// The outcome of one `/v1/yield` body, before HTTP framing. Exposed so
/// tests (and the property suite) can drive the full parse → cache →
/// engine → render pipeline without sockets.
#[derive(Clone, Debug)]
pub struct YieldOutcome {
    /// HTTP status (`200`, or the [`RequestError`] status).
    pub status: u16,
    /// Reply body (the estimate, or `{"error": ...}`).
    pub body: String,
    /// How the engine lookup went (`None` on validation errors).
    pub cache: Option<CacheOutcome>,
}

/// Shared per-daemon state: the engine cache plus the engine thread
/// setting. One instance serves all workers.
pub struct ServerState {
    cache: Mutex<LruCache<CachedEngine>>,
    threads: usize,
}

impl ServerState {
    /// Creates state with the given cache capacity and engine threads.
    #[must_use]
    pub fn new(cache_capacity: usize, threads: usize) -> Self {
        ServerState {
            cache: Mutex::new(LruCache::new(cache_capacity)),
            threads,
        }
    }

    /// Runs one `/v1/yield` body through parse → cache → engine →
    /// render.
    #[must_use]
    pub fn handle_yield(&self, body: &[u8]) -> YieldOutcome {
        let request = match parse_yield_request(body) {
            Ok(request) => request,
            Err(e) => {
                return YieldOutcome {
                    status: e.status,
                    body: error_body(&e.message),
                    cache: None,
                }
            }
        };
        let (engine, outcome) = match request.cache {
            CacheMode::Bypass => {
                let engine = Arc::new(CachedEngine::build(&request, self.threads));
                self.cache.lock().unwrap().note_bypass();
                (engine, CacheOutcome::Bypass)
            }
            CacheMode::Default => self
                .cache
                .lock()
                .unwrap()
                .get_or_insert_with(&request.engine_key(), || {
                    CachedEngine::build(&request, self.threads)
                }),
        };
        YieldOutcome {
            status: 200,
            body: engine.run(&request, self.threads),
            cache: Some(outcome),
        }
    }

    /// A `/v1/health` body: liveness plus cache statistics. Unlike yield
    /// replies this body is *not* byte-stable — it reports live counters.
    #[must_use]
    pub fn health_body(&self, workers: usize) -> String {
        let cache = self.cache.lock().unwrap();
        let stats = cache.stats();
        format!(
            "{{\"status\": \"ok\", \"schema\": \"{SERVE_SCHEMA}\", \"workers\": {workers}, \
             \"threads\": {}, \"cache\": {{\"capacity\": {}, \"entries\": {}, \
             \"hits\": {}, \"misses\": {}, \"bypasses\": {}, \"evictions\": {}, \
             \"hit_rate\": {}}}}}\n",
            self.threads,
            cache.capacity(),
            cache.len(),
            stats.hits,
            stats.misses,
            stats.bypasses,
            stats.evictions,
            dmfb_bench::json::json_number(stats.hit_rate()),
        )
    }

    /// Current cache statistics.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().unwrap().stats()
    }
}

fn error_body(message: &str) -> String {
    format!(
        "{{\"error\": {}}}\n",
        dmfb_bench::json::json_string(message)
    )
}

/// A bound, not-yet-running daemon.
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    state: Arc<ServerState>,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds the listen socket. The daemon does not serve until
    /// [`Server::run`].
    pub fn bind(config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let state = Arc::new(ServerState::new(config.cache_capacity, config.threads));
        Ok(Server {
            listener,
            config,
            state,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (useful with `:0`).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Shared daemon state (primarily for tests).
    #[must_use]
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Serves until a `POST /v1/shutdown` arrives, then drains queued
    /// connections, joins all workers and returns.
    pub fn run(self) -> std::io::Result<()> {
        let workers = self.config.workers.max(1);
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let local = self.listener.local_addr()?;
        let mut pool = Vec::with_capacity(workers);
        for _ in 0..workers {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&self.state);
            let shutdown = Arc::clone(&self.shutdown);
            let config_workers = workers;
            pool.push(std::thread::spawn(move || loop {
                let conn = rx.lock().unwrap().recv();
                match conn {
                    Ok(stream) => {
                        serve_connection(stream, &state, &shutdown, config_workers, local)
                    }
                    Err(_) => break, // acceptor dropped the sender: drained and done
                }
            }));
        }
        for conn in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match conn {
                Ok(stream) => {
                    // A send can only fail if every worker panicked;
                    // dropping the connection is all that's left then.
                    let _ = tx.send(stream);
                }
                Err(_) => continue,
            }
        }
        drop(tx);
        for worker in pool {
            let _ = worker.join();
        }
        Ok(())
    }
}

/// Serves one connection until the client closes, asks to close, errors,
/// or stalls past the read timeout.
fn serve_connection(
    stream: TcpStream,
    state: &ServerState,
    shutdown: &AtomicBool,
    workers: usize,
    local: std::net::SocketAddr,
) {
    if stream.set_read_timeout(Some(http::READ_TIMEOUT)).is_err()
        || stream.set_nodelay(true).is_err()
    {
        return;
    }
    let peer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = peer_stream;
    let mut reader = BufReader::new(stream);
    loop {
        let request = match read_request(&mut reader) {
            Ok(request) => request,
            Err(e) => {
                if let Some((status, reason)) = e.status() {
                    let body = error_body(e.detail());
                    let _ =
                        write_response(&mut writer, status, reason, &[], body.as_bytes(), false);
                }
                return;
            }
        };
        let keep_alive = request.keep_alive;
        let stop_after = route(&request, state, workers, &mut writer, shutdown);
        if stop_after {
            // Wake the acceptor out of `accept()` so it observes the flag.
            let _ = TcpStream::connect(local);
            return;
        }
        if !keep_alive {
            return;
        }
    }
}

/// Routes one parsed request; returns `true` when the daemon should stop
/// (a shutdown request was served).
fn route(
    request: &HttpRequest,
    state: &ServerState,
    workers: usize,
    writer: &mut TcpStream,
    shutdown: &AtomicBool,
) -> bool {
    let keep = request.keep_alive;
    match (request.method.as_str(), request.target.as_str()) {
        ("POST", "/v1/yield") => {
            let started = Instant::now();
            let outcome = state.handle_yield(&request.body);
            let micros = started.elapsed().as_micros();
            let mut headers = vec![("x-dmfb-micros".to_string(), micros.to_string())];
            if let Some(cache) = outcome.cache {
                headers.push(("x-dmfb-cache".to_string(), cache.label().to_string()));
            }
            let reason = if outcome.status == 200 {
                "OK"
            } else {
                "Bad Request"
            };
            let _ = write_response(
                writer,
                outcome.status,
                reason,
                &headers,
                outcome.body.as_bytes(),
                keep,
            );
            false
        }
        ("GET", "/v1/health") => {
            let body = state.health_body(workers);
            let _ = write_response(writer, 200, "OK", &[], body.as_bytes(), keep);
            false
        }
        ("POST", "/v1/shutdown") => {
            shutdown.store(true, Ordering::SeqCst);
            let body =
                format!("{{\"status\": \"shutting-down\", \"schema\": \"{SERVE_SCHEMA}\"}}\n");
            let _ = write_response(writer, 200, "OK", &[], body.as_bytes(), false);
            true
        }
        (_, "/v1/yield" | "/v1/shutdown") => {
            let _ = write_response(
                writer,
                405,
                "Method Not Allowed",
                &[("allow".to_string(), "POST".to_string())],
                error_body("use POST").as_bytes(),
                keep,
            );
            false
        }
        (_, "/v1/health") => {
            let _ = write_response(
                writer,
                405,
                "Method Not Allowed",
                &[("allow".to_string(), "GET".to_string())],
                error_body("use GET").as_bytes(),
                keep,
            );
            false
        }
        (_, target) => {
            let body = error_body(&format!(
                "no such endpoint '{target}' (try /v1/yield, /v1/health, /v1/shutdown)"
            ));
            let _ = write_response(writer, 404, "Not Found", &[], body.as_bytes(), keep);
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_yield_reports_cache_outcomes() {
        let state = ServerState::new(4, 1);
        let body = br#"{"design": "dtmb16", "trials": 50, "primaries": 16}"#;
        let cold = state.handle_yield(body);
        let warm = state.handle_yield(body);
        assert_eq!(cold.status, 200);
        assert_eq!(cold.cache, Some(CacheOutcome::Miss));
        assert_eq!(warm.cache, Some(CacheOutcome::Hit));
        assert_eq!(cold.body, warm.body, "cache must not change the reply");
        let bypass = state.handle_yield(
            br#"{"design": "dtmb16", "trials": 50, "primaries": 16, "cache": "bypass"}"#,
        );
        assert_eq!(bypass.cache, Some(CacheOutcome::Bypass));
        assert_eq!(bypass.body, warm.body, "bypass must not change the reply");
    }

    #[test]
    fn handle_yield_maps_validation_errors_to_400() {
        let state = ServerState::new(4, 1);
        let outcome = state.handle_yield(br#"{"tier": "nope"}"#);
        assert_eq!(outcome.status, 400);
        assert!(outcome.body.contains("error"));
        assert_eq!(outcome.cache, None);
        let outcome = state.handle_yield(b"not json at all");
        assert_eq!(outcome.status, 400);
    }

    #[test]
    fn health_body_counts_lookups() {
        let state = ServerState::new(4, 1);
        let _ = state.handle_yield(br#"{"design": "dtmb16", "trials": 20, "primaries": 16}"#);
        let body = state.health_body(3);
        assert!(body.contains("\"status\": \"ok\""));
        assert!(body.contains("\"misses\": 1"));
        assert!(body.contains("\"workers\": 3"));
    }
}
