//! Cached evaluator engines and deterministic reply rendering.
//!
//! A [`CachedEngine`] is everything expensive about a request: the
//! precomputed [`TrialEvaluator`](dmfb_core::reconfig::TrialEvaluator)
//! behind a [`SchemeYield`], or the full assay stack behind an
//! [`OperationalYield`]. Engines are keyed by
//! [`YieldRequest::engine_key`] and shared across workers by `Arc` —
//! every estimate entry point takes `&self`, so serving a warm request
//! never clones or rebuilds anything.
//!
//! Reply bodies are rendered with the same hand-rolled JSON writers the
//! bench reports use and carry **no** timing or cache information (that
//! travels in response headers), so an identical request produces a
//! byte-identical body no matter which worker served it, how many
//! threads the engine ran on, or whether the engine came from the cache:
//! the engines themselves are thread-count invariant and every estimate
//! is seeded from the request's master seed through a
//! [`SeedSequence`].

use crate::request::{DefectModelChoice, EstimatorChoice, SchemeChoice, Tier, YieldRequest};
use dmfb_bench::json::json_number;
use dmfb_core::prelude::{
    Bernoulli, BernoulliEstimate, Biochip, InjectionModel, ModuleBand, MonteCarlo,
    OperationalYield, SchemeYield, SpareRowArray, SquareCoord, SquareRegion, StratifiedEstimate,
};
use dmfb_core::sim::SeedSequence;

/// One precomputed engine, ready to serve any request that maps to its
/// [`YieldRequest::engine_key`].
pub enum CachedEngine {
    /// A hexagonal DTMB (or no-redundancy) chip: the chip description for
    /// the raw tier plus the fast matching engine for the reconfigured
    /// tier.
    Hex {
        /// The chip (array + policy), used by the raw tier and the
        /// clustered-defect closure.
        chip: Biochip,
        /// The precomputed fast engine.
        engine: SchemeYield,
    },
    /// A square-lattice scheme (interstitial DTMB or spare rows).
    Square {
        /// The precomputed fast engine.
        engine: SchemeYield<SquareCoord>,
        /// The lattice it was compiled over (the defect-sampler hook
        /// needs the topology).
        region: SquareRegion,
    },
    /// The Section 7 assay stack over the fixed IVD case-study chip.
    Assay(OperationalYield),
}

impl CachedEngine {
    /// Builds the engine a request's key describes. This is the expensive
    /// path the cache exists to skip: CSR neighbour construction, matching
    /// scratch sizing and (for assay engines) the full router/scheduler
    /// stack.
    #[must_use]
    pub fn build(request: &YieldRequest, threads: usize) -> Self {
        if let Some(panel) = request.assay {
            return CachedEngine::Assay(
                OperationalYield::ivd(panel)
                    .with_threads(threads)
                    .with_block_trials(request.block_trials),
            );
        }
        match request.scheme {
            SchemeChoice::HexDtmb { .. } => {
                let chip = request.biochip();
                let label = chip
                    .array()
                    .kind()
                    .map_or("no-redundancy".to_string(), |k| k.to_string());
                let evaluator =
                    dmfb_core::reconfig::TrialEvaluator::new(chip.array(), chip.policy());
                let engine = SchemeYield::from_evaluator(label, evaluator)
                    .with_threads(threads)
                    .with_block_trials(request.block_trials);
                CachedEngine::Hex { chip, engine }
            }
            SchemeChoice::SquareDtmb {
                pattern,
                width,
                height,
            } => {
                let region = SquareRegion::rect(width, height);
                let engine = SchemeYield::from_scheme(&region, &pattern)
                    .with_threads(threads)
                    .with_block_trials(request.block_trials);
                CachedEngine::Square { engine, region }
            }
            SchemeChoice::SpareRows {
                width,
                module_rows,
                spare_rows,
            } => {
                let array = SpareRowArray::new(
                    width,
                    vec![ModuleBand {
                        name: "Module 1".into(),
                        rows: module_rows,
                    }],
                    spare_rows,
                );
                let region = array.region();
                let engine = SchemeYield::from_scheme(&region, &array)
                    .with_threads(threads)
                    .with_block_trials(request.block_trials);
                CachedEngine::Square { engine, region }
            }
        }
    }

    /// Runs `request` on this engine and renders the reply body. The
    /// request's master seed never reaches an estimator directly: each
    /// estimate draws its own seed from a [`SeedSequence`] over it, so
    /// multi-estimate tiers stay decorrelated and single-estimate tiers
    /// stay reproducible.
    #[must_use]
    pub fn run(&self, request: &YieldRequest, threads: usize) -> String {
        let estimate_seed = SeedSequence::nth_seed(request.seed, 0);
        let raw_seed = SeedSequence::nth_seed(request.seed, 1);
        let results = match (self, request.tier) {
            (CachedEngine::Hex { chip, .. }, Tier::Raw) => {
                let raw = raw_yield(chip, request.p, request.trials, raw_seed, threads);
                format!("\"raw\": {}", bernoulli_json(&raw))
            }
            (CachedEngine::Hex { chip, engine }, Tier::Reconfigured) => {
                let body = reconfigured_json(engine, chip.array().region(), request, estimate_seed);
                format!("\"reconfigured\": {body}")
            }
            (CachedEngine::Square { engine, region }, Tier::Reconfigured) => {
                let body = reconfigured_json(engine, region, request, estimate_seed);
                format!("\"reconfigured\": {body}")
            }
            (CachedEngine::Assay(engine), Tier::Operational) => match &request.defect_model {
                DefectModelChoice::Clustered(cluster) => {
                    let region = engine.chip().array.region().clone();
                    let e = engine.estimate_with(request.trials, estimate_seed, |rng| {
                        cluster.inject_in(&region, rng)
                    });
                    format!(
                        "\"raw\": {}, \"reconfigured\": {}, \"operational\": {}",
                        bernoulli_json(&e.raw),
                        bernoulli_json(&e.reconfigured),
                        bernoulli_json(&e.operational)
                    )
                }
                DefectModelChoice::Bernoulli => match &request.estimator {
                    EstimatorChoice::Stratified(config) => {
                        let e = engine.estimate_stratified(
                            request.p,
                            request.trials,
                            estimate_seed,
                            config,
                        );
                        format!(
                            "\"raw\": {}, \"reconfigured\": {}, \"operational\": {}",
                            stratified_json(&e.raw),
                            stratified_json(&e.reconfigured),
                            stratified_json(&e.operational)
                        )
                    }
                    EstimatorChoice::Naive => {
                        let e = engine.estimate(request.p, request.trials, estimate_seed);
                        format!(
                            "\"raw\": {}, \"reconfigured\": {}, \"operational\": {}",
                            bernoulli_json(&e.raw),
                            bernoulli_json(&e.reconfigured),
                            bernoulli_json(&e.operational)
                        )
                    }
                },
            },
            // The request validator guarantees tier/engine coherence;
            // reaching any other combination is a routing bug.
            _ => unreachable!("request validation admitted a tier its engine cannot serve"),
        };
        let p_field = match request.defect_model {
            // No single p parameterises the clustered sampler.
            DefectModelChoice::Clustered(_) => String::new(),
            DefectModelChoice::Bernoulli => format!("\"p\": {}, ", json_number(request.p)),
        };
        format!(
            "{{\"schema\": \"dmfb-serve/1\", \"tier\": \"{}\", \"engine\": \"{}\", \
             \"estimator\": \"{}\", \"defect_model\": \"{}\", {p_field}\"trials\": {}, \
             \"seed\": {}, \"results\": {{{results}}}}}\n",
            request.tier.label(),
            request.engine_key(),
            match request.estimator {
                EstimatorChoice::Naive => "naive",
                EstimatorChoice::Stratified(_) => "stratified",
            },
            match request.defect_model {
                DefectModelChoice::Bernoulli => "bernoulli",
                DefectModelChoice::Clustered(_) => "clustered",
            },
            request.trials,
            request.seed,
        )
    }
}

/// The reconfigured-tier estimate on a generic fast engine, as JSON.
fn reconfigured_json<
    C: Copy + Ord + Send + Sync,
    T: dmfb_core::prelude::Topology<Coord = C> + Sync,
>(
    engine: &SchemeYield<C>,
    topo: &T,
    request: &YieldRequest,
    seed: u64,
) -> String {
    match &request.defect_model {
        DefectModelChoice::Clustered(cluster) => {
            let e = engine
                .estimate_with_defects(request.trials, seed, |rng| cluster.inject_in(topo, rng));
            bernoulli_json(&e)
        }
        DefectModelChoice::Bernoulli => match &request.estimator {
            EstimatorChoice::Stratified(config) => {
                let e =
                    engine.estimate_survival_stratified(request.p, request.trials, seed, config);
                stratified_json(&e)
            }
            EstimatorChoice::Naive => {
                let e = engine.estimate_survival(request.p, request.trials, seed);
                bernoulli_json(&e)
            }
        },
    }
}

/// Raw yield (no reconfiguration): the chip is good only when no
/// in-scope primary fails — the same per-trial protocol as
/// [`Biochip::yield_report`], seeded independently of the reconfigured
/// estimate.
fn raw_yield(chip: &Biochip, p: f64, trials: u32, seed: u64, threads: usize) -> BernoulliEstimate {
    let model = Bernoulli::from_survival(p);
    let region = chip.array().region().clone();
    let array = chip.array();
    let policy = chip.policy();
    MonteCarlo::new(trials, seed).run_parallel(threads, |rng| {
        let defects = model.inject(&region, rng);
        let any_relevant = defects
            .faulty_cells()
            .any(|c| array.is_primary(c) && policy.requires(c));
        !any_relevant
    })
}

/// A [`BernoulliEstimate`] as a JSON object with its Wilson interval.
fn bernoulli_json(e: &BernoulliEstimate) -> String {
    let (lo, hi) = e.wilson95();
    format!(
        "{{\"point\": {}, \"ci_lo\": {}, \"ci_hi\": {}, \"trials\": {}}}",
        json_number(e.point()),
        json_number(lo),
        json_number(hi),
        e.trials()
    )
}

/// A [`StratifiedEstimate`] as a JSON object with its rare-event
/// bookkeeping. A non-finite effective-sample count (an exactly-zero
/// variance) degrades to JSON `null` via [`json_number`].
fn stratified_json(e: &StratifiedEstimate) -> String {
    let (lo, hi) = e.ci95();
    format!(
        "{{\"point\": {}, \"ci_lo\": {}, \"ci_hi\": {}, \"std_error\": {}, \
         \"truncated_mass\": {}, \"trials\": {}, \"strata\": {}, \"effective_samples\": {}}}",
        json_number(e.point),
        json_number(lo),
        json_number(hi),
        json_number(e.std_error()),
        json_number(e.truncated_mass),
        e.trials,
        e.strata.len(),
        json_number(e.effective_trials())
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::parse_yield_request;

    fn run(body: &str) -> String {
        let req = parse_yield_request(body.as_bytes()).unwrap();
        CachedEngine::build(&req, 1).run(&req, 1)
    }

    #[test]
    fn replies_parse_and_echo_the_request() {
        let body = run(r#"{"design": "dtmb26", "trials": 200, "seed": 9}"#);
        let value = dmfb_bench::json::JsonValue::parse(&body).unwrap();
        let obj = value.as_object("reply").unwrap();
        let field = |k: &str| dmfb_bench::json::get(obj, k).unwrap();
        assert_eq!(field("schema").as_str("schema").unwrap(), "dmfb-serve/1");
        assert_eq!(field("tier").as_str("tier").unwrap(), "reconfigured");
        assert_eq!(field("seed").as_f64("seed").unwrap(), 9.0);
        let results = field("results").as_object("results").unwrap();
        let point = dmfb_bench::json::get(
            dmfb_bench::json::get(results, "reconfigured")
                .unwrap()
                .as_object("reconfigured")
                .unwrap(),
            "point",
        )
        .unwrap()
        .as_f64("point")
        .unwrap();
        assert!((0.0..=1.0).contains(&point));
    }

    #[test]
    fn identical_requests_are_byte_identical_across_thread_counts() {
        let req =
            parse_yield_request(br#"{"design": "dtmb26", "trials": 300, "seed": 5, "p": 0.97}"#)
                .unwrap();
        let one = CachedEngine::build(&req, 1).run(&req, 1);
        let four = CachedEngine::build(&req, 4).run(&req, 4);
        assert_eq!(one, four);
    }

    #[test]
    fn every_tier_and_estimator_serves() {
        for body in [
            r#"{"tier": "raw", "design": "dtmb16", "trials": 100}"#,
            r#"{"trials": 100, "estimator": "stratified", "pilot": 8}"#,
            r#"{"trials": 50, "defect_model": "clustered"}"#,
            r#"{"scheme": "square-dtmb", "width": 8, "height": 8, "trials": 100}"#,
            r#"{"scheme": "spare-rows", "trials": 100}"#,
            r#"{"tier": "operational", "assay": "ivd-panel", "trials": 50}"#,
            r#"{"tier": "operational", "assay": "ivd-panel", "trials": 50,
                "estimator": "stratified"}"#,
            r#"{"tier": "operational", "assay": "ivd-panel", "trials": 30,
                "defect_model": "clustered", "cluster_mean": 0.5}"#,
        ] {
            let reply = run(body);
            assert!(
                dmfb_bench::json::JsonValue::parse(&reply).is_ok(),
                "unparseable reply for {body}: {reply}"
            );
        }
    }

    #[test]
    fn operational_tiers_are_ordered() {
        let body = run(r#"{"tier": "operational", "assay": "ivd-panel", "trials": 150}"#);
        let value = dmfb_bench::json::JsonValue::parse(&body).unwrap();
        let obj = value.as_object("reply").unwrap();
        let results = dmfb_bench::json::get(obj, "results")
            .unwrap()
            .as_object("results")
            .unwrap();
        let point = |k: &str| {
            dmfb_bench::json::get(
                dmfb_bench::json::get(results, k)
                    .unwrap()
                    .as_object(k)
                    .unwrap(),
                "point",
            )
            .unwrap()
            .as_f64("point")
            .unwrap()
        };
        assert!(point("operational") <= point("reconfigured"));
        assert!(point("raw") <= point("reconfigured"));
    }
}
