//! A deterministic LRU cache for precomputed evaluator engines.
//!
//! The expensive part of a yield request is building the
//! [`TrialEvaluator`](dmfb_core::reconfig::TrialEvaluator) — CSR
//! neighbour structure, matching scratch, spare bookkeeping — not running
//! the trials. The daemon therefore caches built engines keyed by the
//! request's *canonical engine key* (scheme + shape + trial-engine
//! selection) and shares them across workers behind an [`Arc`]: every
//! estimate method takes `&self`, so a cache hit is a pointer clone.
//!
//! The implementation is a plain move-to-front vector, not a hash map
//! with an intrusive list: capacities are small (default 32), lookups are
//! string compares, and — decisive for the proptest contract — the
//! eviction order is trivially deterministic: exactly the least recently
//! *used* (hit or inserted) key falls off the back, with no tie-breaking,
//! hashing or clock dependence.

use std::sync::Arc;

/// How a lookup was satisfied, reported to the client in the
/// `x-dmfb-cache` response header and tallied in [`CacheStats`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The engine was already cached.
    Hit,
    /// The engine was built and inserted.
    Miss,
    /// The request asked to bypass the cache (`"cache": "bypass"`); the
    /// engine was rebuilt and the cache left untouched.
    Bypass,
}

impl CacheOutcome {
    /// The header value (`hit` / `miss` / `bypass`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Bypass => "bypass",
        }
    }
}

/// Lifetime counters for the `/v1/health` report and the soak harness's
/// hit-rate column.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that built and inserted a new engine.
    pub misses: u64,
    /// Lookups that deliberately bypassed the cache.
    pub bypasses: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// `hits / (hits + misses)`, ignoring bypasses; `0` when nothing has
    /// been looked up yet.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The move-to-front LRU described in the module docs. Callers wrap it in
/// a mutex; building an engine happens under that lock, which serialises
/// concurrent first requests for the *same* key into a single build
/// instead of racing N workers through N redundant constructions.
#[derive(Debug)]
pub struct LruCache<V> {
    entries: Vec<(String, Arc<V>)>,
    capacity: usize,
    stats: CacheStats,
}

impl<V> LruCache<V> {
    /// Creates a cache holding at most `capacity` engines. A capacity of
    /// zero degenerates to "always rebuild" (every lookup is a miss and
    /// nothing is retained), which the soak harness uses as a reference.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        LruCache {
            entries: Vec::new(),
            capacity,
            stats: CacheStats::default(),
        }
    }

    /// Looks up `key`, building and inserting with `build` on a miss.
    /// On a hit the entry moves to the front (most recently used); on a
    /// miss the entry is inserted at the front and the back entry is
    /// evicted if the capacity is exceeded.
    pub fn get_or_insert_with(
        &mut self,
        key: &str,
        build: impl FnOnce() -> V,
    ) -> (Arc<V>, CacheOutcome) {
        if let Some(i) = self.entries.iter().position(|(k, _)| k == key) {
            let entry = self.entries.remove(i);
            let value = Arc::clone(&entry.1);
            self.entries.insert(0, entry);
            self.stats.hits += 1;
            return (value, CacheOutcome::Hit);
        }
        let value = Arc::new(build());
        self.stats.misses += 1;
        if self.capacity == 0 {
            return (value, CacheOutcome::Miss);
        }
        self.entries
            .insert(0, (key.to_string(), Arc::clone(&value)));
        while self.entries.len() > self.capacity {
            self.entries.pop();
            self.stats.evictions += 1;
        }
        (value, CacheOutcome::Miss)
    }

    /// Tallies a bypassed lookup. The caller builds the engine itself,
    /// *outside* the cache lock — a bypass touches no entries, so making
    /// it hold the lock through an expensive build would serialise cold
    /// requests against every warm one.
    pub fn note_bypass(&mut self) {
        self.stats.bypasses += 1;
    }

    /// Cached keys, most recently used first.
    #[must_use]
    pub fn keys(&self) -> Vec<String> {
        self.entries.iter().map(|(k, _)| k.clone()).collect()
    }

    /// Number of cached engines.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The capacity bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lifetime counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn touch(cache: &mut LruCache<String>, key: &str) -> CacheOutcome {
        cache.get_or_insert_with(key, || key.to_uppercase()).1
    }

    #[test]
    fn hits_misses_and_eviction_order() {
        let mut c = LruCache::new(2);
        assert_eq!(touch(&mut c, "a"), CacheOutcome::Miss);
        assert_eq!(touch(&mut c, "b"), CacheOutcome::Miss);
        assert_eq!(touch(&mut c, "a"), CacheOutcome::Hit);
        // "b" is now least recently used, so "c" evicts it.
        assert_eq!(touch(&mut c, "c"), CacheOutcome::Miss);
        assert_eq!(c.keys(), vec!["c", "a"]);
        assert_eq!(touch(&mut c, "b"), CacheOutcome::Miss);
        assert_eq!(c.keys(), vec!["b", "c"]);
        assert_eq!(c.stats().evictions, 2);
    }

    #[test]
    fn hit_returns_the_cached_value_not_a_rebuild() {
        let mut c = LruCache::new(4);
        let (first, _) = c.get_or_insert_with("k", || "built".to_string());
        let (again, outcome) = c.get_or_insert_with("k", || unreachable!("must not rebuild"));
        assert_eq!(outcome, CacheOutcome::Hit);
        assert!(Arc::ptr_eq(&first, &again));
    }

    #[test]
    fn bypass_leaves_entries_untouched() {
        let mut c = LruCache::new(2);
        touch(&mut c, "a");
        c.note_bypass();
        assert_eq!(c.keys(), vec!["a"]);
        assert_eq!(c.stats().bypasses, 1);
    }

    #[test]
    fn zero_capacity_always_rebuilds() {
        let mut c = LruCache::new(0);
        assert_eq!(touch(&mut c, "a"), CacheOutcome::Miss);
        assert_eq!(touch(&mut c, "a"), CacheOutcome::Miss);
        assert!(c.is_empty());
    }

    #[test]
    fn hit_rate_ignores_bypasses() {
        let mut c = LruCache::new(2);
        touch(&mut c, "a");
        touch(&mut c, "a");
        c.note_bypass();
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }
}
