//! `dmfb soak`: the load harness and latency-percentile gate for the
//! daemon.
//!
//! The soak drives three phases of concurrent request mixes against a
//! running `dmfb serve` and reports each as one [`BenchEntry`] in a
//! `dmfb-bench/1` report, filling the latency columns (`p50_ms`,
//! `p95_ms`, `p99_ms`, `cache_hit_rate`) that PR 7 added to the schema:
//!
//! * **`serve/cold`** — the dtmb26 workload with `"cache": "bypass"`:
//!   every request pays the full evaluator rebuild. This is the
//!   latency reference the cache is judged against.
//! * **`serve/warm`** — the identical workload through the cache: one
//!   miss, then hits that skip construction entirely.
//! * **`serve/mixed`** — a rotating mix of engines (two hex designs, a
//!   square-dtmb array, a spare-row baseline) and both estimators,
//!   exercising LRU traffic with realistic key diversity.
//!
//! Beyond timing, the soak *verifies the daemon's contracts while under
//! load*: warm and bypass replies for the identical request must be
//! byte-identical, malformed requests must come back as clean 4xxs with
//! the daemon still healthy afterwards, and (with
//! [`SoakConfig::require_speedup`]) the warm-cache median latency must
//! beat the cold reference by the demanded factor.

use crate::http::HttpClient;
use dmfb_bench::json::{get, JsonValue};
use dmfb_bench::{BenchEntry, BenchReport, TextTable};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Load-harness configuration.
#[derive(Clone, Debug)]
pub struct SoakConfig {
    /// Daemon address, e.g. `127.0.0.1:8750`.
    pub addr: String,
    /// Requests per phase.
    pub requests: usize,
    /// Concurrent client connections.
    pub concurrency: usize,
    /// Monte-Carlo trials per request. Kept small on purpose: the soak
    /// measures *service* latency (parse, cache, evaluator build), not
    /// trial throughput — the bench suite owns that axis.
    pub trials: u32,
    /// Hex primary-cell count of the cold/warm dtmb26 workload. Sized so
    /// evaluator construction dominates a cold request.
    pub primaries: usize,
    /// Require `cold_p50 / warm_p50 >= require_speedup` (0 disables).
    pub require_speedup: f64,
    /// Also probe malformed/unknown requests and check the daemon
    /// answers 4xx and stays healthy.
    pub probe_errors: bool,
    /// Send `POST /v1/shutdown` when done.
    pub shutdown: bool,
    /// Report label (`BENCH_<label>.json`).
    pub label: String,
    /// Marks the report as a quick (CI smoke) run.
    pub quick: bool,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            addr: "127.0.0.1:8750".into(),
            requests: 160,
            concurrency: 4,
            trials: 16,
            primaries: 2400,
            require_speedup: 0.0,
            probe_errors: true,
            shutdown: false,
            label: "serve".into(),
            quick: false,
        }
    }
}

/// What one soak produced.
#[derive(Clone, Debug)]
pub struct SoakReport {
    /// The machine-readable report (one entry per phase, latency columns
    /// filled).
    pub report: BenchReport,
    /// Human-readable phase table.
    pub rendered: String,
    /// Contract violations observed under load (empty = clean run).
    pub failures: Vec<String>,
}

/// Latencies and replies from one phase.
struct PhaseRun {
    wall_ms: f64,
    latencies_ms: Vec<f64>,
    /// Reply bodies for requests that used body index 0 (the identity
    /// probe), plus any non-200 statuses seen.
    reference_replies: Vec<String>,
    errors: Vec<String>,
}

/// Nearest-rank percentile of an unsorted latency sample.
fn percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Runs `bodies[i % bodies.len()]` for `requests` requests over
/// `concurrency` connections, timing each round trip client-side.
fn run_phase(
    addr: &str,
    bodies: &[String],
    requests: usize,
    concurrency: usize,
) -> Result<PhaseRun, String> {
    let next = Arc::new(AtomicUsize::new(0));
    let collected: Arc<Mutex<PhaseRun>> = Arc::new(Mutex::new(PhaseRun {
        wall_ms: 0.0,
        latencies_ms: Vec::with_capacity(requests),
        reference_replies: Vec::new(),
        errors: Vec::new(),
    }));
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..concurrency.max(1) {
            let next = Arc::clone(&next);
            let collected = Arc::clone(&collected);
            scope.spawn(move || {
                let mut client = match HttpClient::connect(addr) {
                    Ok(c) => c,
                    Err(e) => {
                        collected
                            .lock()
                            .unwrap()
                            .errors
                            .push(format!("connect to {addr}: {e}"));
                        return;
                    }
                };
                let mut latencies = Vec::new();
                let mut replies = Vec::new();
                let mut errors = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= requests {
                        break;
                    }
                    let body = &bodies[i % bodies.len()];
                    let sent = Instant::now();
                    match client.request("POST", "/v1/yield", body.as_bytes()) {
                        Ok(response) => {
                            latencies.push(sent.elapsed().as_secs_f64() * 1e3);
                            if response.status != 200 {
                                errors.push(format!(
                                    "request {i}: status {} ({})",
                                    response.status,
                                    String::from_utf8_lossy(&response.body).trim()
                                ));
                            } else if i % bodies.len() == 0 {
                                replies.push(String::from_utf8_lossy(&response.body).into_owned());
                            }
                        }
                        Err(e) => errors.push(format!("request {i}: {e}")),
                    }
                }
                let mut collected = collected.lock().unwrap();
                collected.latencies_ms.extend(latencies);
                collected.reference_replies.extend(replies);
                collected.errors.extend(errors);
            });
        }
    });
    let mut run = Arc::try_unwrap(collected)
        .map_err(|_| "phase workers leaked".to_string())?
        .into_inner()
        .unwrap();
    run.wall_ms = started.elapsed().as_secs_f64() * 1e3;
    Ok(run)
}

/// Cache statistics scraped from `/v1/health`.
fn health_stats(addr: &str) -> Result<(u64, u64), String> {
    let mut client = HttpClient::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let response = client
        .request("GET", "/v1/health", b"")
        .map_err(|e| format!("health: {e}"))?;
    if response.status != 200 {
        return Err(format!("health returned {}", response.status));
    }
    let text = String::from_utf8_lossy(&response.body).into_owned();
    let value = JsonValue::parse(&text)?;
    let obj = value.as_object("health")?;
    let cache = get(obj, "cache")?.as_object("cache")?;
    let hits = get(cache, "hits")?.as_f64("hits")? as u64;
    let misses = get(cache, "misses")?.as_f64("misses")? as u64;
    Ok((hits, misses))
}

/// The yield point of a reply body (the phase's sanity anchor).
fn reply_yield(reply: &str) -> Result<f64, String> {
    let value = JsonValue::parse(reply)?;
    let obj = value.as_object("reply")?;
    let results = get(obj, "results")?.as_object("results")?;
    let (_, first) = results
        .first()
        .ok_or_else(|| "empty results object".to_string())?;
    get(first.as_object("estimate")?, "point")?.as_f64("point")
}

/// Runs the full soak against a daemon at `config.addr`.
pub fn run_soak(config: &SoakConfig) -> Result<SoakReport, String> {
    let mut failures = Vec::new();

    // The identity workload: fixed body, so every reply must be
    // byte-identical within *and across* the cold and warm phases.
    let dtmb26 = format!(
        "{{\"design\": \"dtmb26\", \"primaries\": {}, \"trials\": {}, \"seed\": 11, \"p\": 0.95}}",
        config.primaries, config.trials
    );
    let dtmb26_bypass = format!(
        "{{\"design\": \"dtmb26\", \"primaries\": {}, \"trials\": {}, \"seed\": 11, \"p\": 0.95, \
         \"cache\": \"bypass\"}}",
        config.primaries, config.trials
    );
    let mixed: Vec<String> = vec![
        dtmb26.clone(),
        format!(
            "{{\"design\": \"dtmb36\", \"primaries\": {}, \"trials\": {}, \"seed\": 12}}",
            config.primaries / 2,
            config.trials
        ),
        format!(
            "{{\"scheme\": \"square-dtmb\", \"width\": 24, \"height\": 24, \"trials\": {}, \
             \"seed\": 13, \"estimator\": \"stratified\", \"p\": 0.999}}",
            config.trials
        ),
        format!(
            "{{\"scheme\": \"spare-rows\", \"width\": 16, \"module_rows\": 12, \
             \"spare_rows\": 2, \"trials\": {}, \"seed\": 14}}",
            config.trials
        ),
    ];

    let (hits0, misses0) = health_stats(&config.addr)?;
    let cold = run_phase(
        &config.addr,
        std::slice::from_ref(&dtmb26_bypass),
        config.requests,
        config.concurrency,
    )?;
    let (hits1, misses1) = health_stats(&config.addr)?;
    let warm = run_phase(
        &config.addr,
        std::slice::from_ref(&dtmb26),
        config.requests,
        config.concurrency,
    )?;
    let (hits2, misses2) = health_stats(&config.addr)?;
    let mixed_run = run_phase(&config.addr, &mixed, config.requests, config.concurrency)?;
    let (hits3, misses3) = health_stats(&config.addr)?;

    for (phase, run) in [("cold", &cold), ("warm", &warm), ("mixed", &mixed_run)] {
        for error in &run.errors {
            failures.push(format!("{phase}: {error}"));
        }
    }

    // Byte-identity under load: every reply to the identity body, cached,
    // bypassed, whichever worker served it, must be the same bytes.
    let mut identity = cold
        .reference_replies
        .iter()
        .chain(warm.reference_replies.iter());
    if let Some(first) = identity.next() {
        if let Some(other) = identity.find(|r| *r != first) {
            failures.push(format!(
                "replies to the identical request diverged:\n  {first}  vs\n  {other}"
            ));
        }
    } else {
        failures.push("no reference replies collected".into());
    }

    let hit_rate = |hits_b: u64, hits_a: u64, misses_b: u64, misses_a: u64| {
        let (h, m) = (hits_b - hits_a, misses_b - misses_a);
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    };
    let phases = [
        (
            "serve/cold",
            "DTMB(2,6) bypass",
            &cold,
            hit_rate(hits1, hits0, misses1, misses0),
        ),
        (
            "serve/warm",
            "DTMB(2,6) cached",
            &warm,
            hit_rate(hits2, hits1, misses2, misses1),
        ),
        (
            "serve/mixed",
            "4-engine mix",
            &mixed_run,
            hit_rate(hits3, hits2, misses3, misses2),
        ),
    ];

    let mut report = BenchReport::new(&config.label, config.concurrency, config.quick);
    let mut table = TextTable::new(vec![
        "phase".into(),
        "requests".into(),
        "p50 ms".into(),
        "p95 ms".into(),
        "p99 ms".into(),
        "req/s".into(),
        "hit rate".into(),
    ]);
    for (name, design, run, rate) in &phases {
        let yield_estimate = run
            .reference_replies
            .first()
            .map(|r| reply_yield(r))
            .transpose()?
            .unwrap_or(f64::NAN);
        let (p50, p95, p99) = (
            percentile(&run.latencies_ms, 50.0),
            percentile(&run.latencies_ms, 95.0),
            percentile(&run.latencies_ms, 99.0),
        );
        let requests = run.latencies_ms.len();
        let throughput = if run.wall_ms > 0.0 {
            u64::from(config.trials) as f64 * requests as f64 / (run.wall_ms / 1e3)
        } else {
            0.0
        };
        report.entries.push(BenchEntry {
            name: (*name).to_string(),
            scheme: "serve".into(),
            design: (*design).to_string(),
            primaries: config.primaries,
            trials: u64::from(config.trials) * requests as u64,
            grid_points: requests,
            wall_ms: run.wall_ms,
            trials_per_sec: throughput,
            yield_estimate,
            assay: None,
            operational_yield: None,
            estimator: Some("naive".into()),
            defect_model: Some("bernoulli".into()),
            engine: Some("block".into()),
            variance: None,
            effective_samples: None,
            p50_ms: Some(p50),
            p95_ms: Some(p95),
            p99_ms: Some(p99),
            cache_hit_rate: Some(*rate),
            campaign: None,
            // Soak phases mix hex and spare-row requests; no single
            // scheme describes the workload.
            spec: None,
        });
        table.row(vec![
            (*name).to_string(),
            requests.to_string(),
            format!("{p50:.3}"),
            format!("{p95:.3}"),
            format!("{p99:.3}"),
            format!("{:.0}", requests as f64 / (run.wall_ms / 1e3)),
            format!("{rate:.2}"),
        ]);
    }

    if config.require_speedup > 0.0 {
        let cold_p50 = percentile(&cold.latencies_ms, 50.0);
        let warm_p50 = percentile(&warm.latencies_ms, 50.0);
        let speedup = if warm_p50 > 0.0 {
            cold_p50 / warm_p50
        } else {
            f64::INFINITY
        };
        if speedup < config.require_speedup {
            failures.push(format!(
                "warm-cache p50 {warm_p50:.3} ms is only {speedup:.1}x faster than the \
                 cold rebuild p50 {cold_p50:.3} ms (required {:.1}x)",
                config.require_speedup
            ));
        }
    }

    if config.probe_errors {
        probe_error_handling(&config.addr, &mut failures);
    }

    if config.shutdown {
        let mut client = HttpClient::connect(&config.addr).map_err(|e| format!("connect: {e}"))?;
        match client.request("POST", "/v1/shutdown", b"") {
            Ok(response) if response.status == 200 => {}
            Ok(response) => failures.push(format!("shutdown returned {}", response.status)),
            Err(e) => failures.push(format!("shutdown failed: {e}")),
        }
    }

    Ok(SoakReport {
        rendered: table.render(),
        report,
        failures,
    })
}

/// Fires malformed and misrouted requests; the daemon must answer clean
/// 4xxs and still serve afterwards.
fn probe_error_handling(addr: &str, failures: &mut Vec<String>) {
    let expect =
        |failures: &mut Vec<String>, what: &str, got: std::io::Result<u16>, want: u16| match got {
            Ok(status) if status == want => {}
            Ok(status) => failures.push(format!("{what}: expected {want}, got {status}")),
            Err(e) => failures.push(format!("{what}: {e}")),
        };
    let one_shot = |raw_or_body: Result<&[u8], &[u8]>| -> std::io::Result<u16> {
        let mut client = HttpClient::connect(addr)?;
        match raw_or_body {
            Ok(body) => client.request("POST", "/v1/yield", body).map(|r| r.status),
            Err(raw) => client.request_raw(raw).map(|r| r.status),
        }
    };
    expect(
        failures,
        "non-JSON body",
        one_shot(Ok(b"certainly not json")),
        400,
    );
    expect(
        failures,
        "unknown field",
        one_shot(Ok(br#"{"warp_factor": 9}"#)),
        400,
    );
    expect(
        failures,
        "foreign subparam",
        one_shot(Ok(br#"{"scheme": "hex-dtmb", "pattern": "stripes"}"#)),
        400,
    );
    expect(
        failures,
        "malformed request line",
        one_shot(Err(b"BLORP /v1/yield HTTP/9.9\r\n\r\n")),
        400,
    );
    let mut client = match HttpClient::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            failures.push(format!("reconnect after probes: {e}"));
            return;
        }
    };
    expect(
        failures,
        "unknown endpoint",
        client.request("POST", "/v1/nope", b"{}").map(|r| r.status),
        404,
    );
    expect(
        failures,
        "wrong method",
        client.request("GET", "/v1/yield", b"").map(|r| r.status),
        405,
    );
    expect(
        failures,
        "health after probes",
        client.request("GET", "/v1/health", b"").map(|r| r.status),
        200,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let samples = [5.0, 1.0, 4.0, 2.0, 3.0];
        assert_eq!(percentile(&samples, 50.0), 3.0);
        assert_eq!(percentile(&samples, 95.0), 5.0);
        assert_eq!(percentile(&samples, 99.0), 5.0);
        assert_eq!(percentile(&samples, 100.0), 5.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.5], 99.0), 7.5);
    }

    #[test]
    fn reply_yield_reads_the_first_result() {
        let reply = r#"{"results": {"reconfigured": {"point": 0.25, "trials": 4}}}"#;
        assert_eq!(reply_yield(reply).unwrap(), 0.25);
        assert!(reply_yield("{}").is_err());
    }
}
