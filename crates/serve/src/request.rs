//! Strict parsing and validation of `/v1/yield` request bodies.
//!
//! The request vocabulary is the CLI's, field for field: the same scheme
//! sub-parameters, estimator and defect-model selections, and the same
//! *foreign-parameter rejection* discipline — a field the selected
//! scheme/estimator/model/tier would silently ignore is refused with a
//! `400` naming the conflict, never dropped. A daemon that ignored stray
//! fields would happily serve numbers under a mislabelled configuration,
//! which is exactly the failure mode the CLI guards rule out.
//!
//! On top of the CLI rules the service adds untrusted-input ceilings
//! ([`MAX_PRIMARIES`], [`MAX_TRIALS`]): a CLI user who asks for a
//! billion-cell array only hurts themselves; a network client must not be
//! able to park a worker (or the allocator) with one request.

use dmfb_bench::json::JsonValue;
use dmfb_core::prelude::{
    AssayPanel, Biochip, ClusteredDefects, DtmbKind, SquarePattern, StratifiedConfig,
};

/// Upper bound on `--block-trials`, shared with the CLI's guard.
pub const MAX_BLOCK_TRIALS: usize = 65_536;

/// Upper bound on user-supplied square-lattice dimensions (the CLI's
/// `MAX_DIM`).
pub const MAX_DIM: u32 = 4096;

/// Upper bound on hex primary-cell counts. Engine build time and memory
/// are linear in this, so it is the knob a hostile client would turn.
pub const MAX_PRIMARIES: usize = 65_536;

/// Upper bound on Monte-Carlo trials per request.
pub const MAX_TRIALS: u32 = 10_000_000;

/// A validation failure, carrying the HTTP status it maps to (always
/// `400` today, but the type keeps routing and phrasing in one place).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestError {
    /// HTTP status code for the reply.
    pub status: u16,
    /// Human-readable reason, sent back as `{"error": ...}`.
    pub message: String,
}

impl RequestError {
    fn bad(message: impl Into<String>) -> Self {
        RequestError {
            status: 400,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// Which yield tier a request asks for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// Yield without reconfiguration (all in-scope primaries fault-free).
    Raw,
    /// Yield with local reconfiguration — the paper's headline number.
    Reconfigured,
    /// The Section 7 assay-aware tier: raw, reconfigured and operational
    /// yield side by side for a fixed IVD case-study chip.
    Operational,
}

impl Tier {
    /// The wire label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Tier::Raw => "raw",
            Tier::Reconfigured => "reconfigured",
            Tier::Operational => "operational",
        }
    }
}

/// Which redundancy scheme the request evaluates (the CLI's
/// `SchemeChoice`, re-stated here so the service crate does not depend on
/// the binary).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchemeChoice {
    /// Hexagonal DTMB patterns, selected via `design`/`primaries`.
    HexDtmb {
        /// Which DTMB design (`None` = no redundancy).
        design: Option<DtmbKind>,
        /// Primary-cell count.
        primaries: usize,
    },
    /// Square-lattice interstitial patterns.
    SquareDtmb {
        /// Which spare pattern.
        pattern: SquarePattern,
        /// Array width in cells.
        width: u32,
        /// Array height in cells.
        height: u32,
    },
    /// Boundary spare-row baseline (shifted replacement).
    SpareRows {
        /// Array width in cells.
        width: u32,
        /// Module rows above the spare rows.
        module_rows: u32,
        /// Spare rows at the bottom.
        spare_rows: u32,
    },
}

/// Estimator selection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EstimatorChoice {
    /// Plain Monte-Carlo (the default).
    Naive,
    /// Defect-count-stratified rare-event estimator with its tuning.
    Stratified(StratifiedConfig),
}

/// Defect-model selection.
#[derive(Clone, Debug)]
pub enum DefectModelChoice {
    /// The paper's i.i.d. cell-failure assumption (the default).
    Bernoulli,
    /// Negative-binomial clustered wafer defects.
    Clustered(ClusteredDefects),
}

/// Cache directive for this request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheMode {
    /// Use the engine cache (the default).
    Default,
    /// Rebuild the engine from scratch, leaving the cache untouched. The
    /// reply body is identical either way; only timing differs. The soak
    /// harness uses this as its cold reference.
    Bypass,
}

/// One fully validated `/v1/yield` request.
#[derive(Clone, Debug)]
pub struct YieldRequest {
    /// Requested tier.
    pub tier: Tier,
    /// Requested scheme (ignored shape-wise when `assay` fixes the chip).
    pub scheme: SchemeChoice,
    /// Assay panel (`Some` exactly when `tier` is operational).
    pub assay: Option<AssayPanel>,
    /// Estimator selection.
    pub estimator: EstimatorChoice,
    /// Defect-model selection.
    pub defect_model: DefectModelChoice,
    /// Trial-engine selection: `None` = auto block engine, `Some(0)` =
    /// scalar, `Some(n)` = `n`-trial batches.
    pub block_trials: Option<usize>,
    /// Cell-survival probability (unused by the clustered model).
    pub p: f64,
    /// Monte-Carlo trials (the total budget under the stratified
    /// estimator).
    pub trials: u32,
    /// Master seed. The engine seeds each estimate through
    /// [`dmfb_core::sim::SeedSequence`], so replies are byte-identical
    /// for identical requests regardless of worker or thread count.
    pub seed: u64,
    /// Cache directive.
    pub cache: CacheMode,
}

/// Every field `/v1/yield` understands; anything else is rejected by
/// name so typos cannot silently select a default.
const KNOWN_FIELDS: [&str; 23] = [
    "tier",
    "scheme",
    "design",
    "primaries",
    "pattern",
    "width",
    "height",
    "module_rows",
    "spare_rows",
    "estimator",
    "tolerance",
    "pilot",
    "defect_model",
    "cluster_mean",
    "cluster_dispersion",
    "cluster_radius",
    "cluster_peak",
    "block_trials",
    "assay",
    "p",
    "trials",
    "seed",
    "cache",
];

/// Scheme-shaping fields, mirroring the CLI's `SCHEME_SUBPARAMS`.
const SCHEME_SUBPARAMS: [&str; 7] = [
    "design",
    "primaries",
    "pattern",
    "width",
    "height",
    "module_rows",
    "spare_rows",
];

/// Sub-parameters of `"estimator": "stratified"`.
const ESTIMATOR_SUBPARAMS: [&str; 2] = ["tolerance", "pilot"];

/// Sub-parameters of `"defect_model": "clustered"`.
const CLUSTER_SUBPARAMS: [&str; 4] = [
    "cluster_mean",
    "cluster_dispersion",
    "cluster_radius",
    "cluster_peak",
];

/// A parsed body with field-presence tracking, so the foreign-parameter
/// guards can distinguish "absent" from "present at its default value"
/// exactly like the CLI's `Options::flag`.
struct Fields<'a> {
    obj: &'a [(String, JsonValue)],
}

impl<'a> Fields<'a> {
    fn has(&self, key: &str) -> bool {
        self.obj.iter().any(|(k, _)| k == key)
    }

    fn str_field(&self, key: &str) -> Result<Option<&'a str>, RequestError> {
        match self.obj.iter().find(|(k, _)| k == key) {
            None => Ok(None),
            Some((_, v)) => v.as_str(key).map(Some).map_err(RequestError::bad),
        }
    }

    fn f64_field(&self, key: &str) -> Result<Option<f64>, RequestError> {
        match self.obj.iter().find(|(k, _)| k == key) {
            None => Ok(None),
            Some((_, v)) => {
                let x = v.as_f64(key).map_err(RequestError::bad)?;
                if x.is_finite() {
                    Ok(Some(x))
                } else {
                    Err(RequestError::bad(format!("'{key}' must be finite")))
                }
            }
        }
    }

    /// A non-negative integer field. JSON numbers are doubles, so the
    /// value must be integral and at most 2^53 to be trusted.
    fn uint_field(&self, key: &str) -> Result<Option<u64>, RequestError> {
        match self.f64_field(key)? {
            None => Ok(None),
            Some(x) => {
                if x < 0.0 || x.fract() != 0.0 || x > 9_007_199_254_740_992.0 {
                    return Err(RequestError::bad(format!(
                        "'{key}' must be a non-negative integer, got {x}"
                    )));
                }
                Ok(Some(x as u64))
            }
        }
    }

    fn dim_field(&self, key: &str, default: u32, min: u32) -> Result<u32, RequestError> {
        let value = match self.uint_field(key)? {
            None => return Ok(default),
            Some(v) => u32::try_from(v)
                .map_err(|_| RequestError::bad(format!("'{key}' is out of range")))?,
        };
        if value < min || value > MAX_DIM {
            return Err(RequestError::bad(format!(
                "need {min} <= '{key}' <= {MAX_DIM}, got {value}"
            )));
        }
        Ok(value)
    }
}

/// Parses and fully validates one `/v1/yield` body.
pub fn parse_yield_request(body: &[u8]) -> Result<YieldRequest, RequestError> {
    let text =
        std::str::from_utf8(body).map_err(|_| RequestError::bad("request body is not UTF-8"))?;
    let value = JsonValue::parse(text).map_err(RequestError::bad)?;
    let obj = value.as_object("request body").map_err(RequestError::bad)?;
    for (key, _) in obj {
        if !KNOWN_FIELDS.contains(&key.as_str()) {
            return Err(RequestError::bad(format!("unknown field '{key}'")));
        }
    }
    if let Some(dup) = obj
        .iter()
        .enumerate()
        .find(|(i, (k, _))| obj[..*i].iter().any(|(prev, _)| prev == k))
    {
        return Err(RequestError::bad(format!("duplicate field '{}'", dup.1 .0)));
    }
    let fields = Fields { obj };

    let tier = match fields.str_field("tier")? {
        None | Some("reconfigured") => Tier::Reconfigured,
        Some("raw") => Tier::Raw,
        Some("operational") => Tier::Operational,
        Some(other) => {
            return Err(RequestError::bad(format!(
                "unknown tier '{other}' (valid: raw, reconfigured, operational)"
            )))
        }
    };

    let scheme = parse_scheme(&fields)?;
    reject_foreign_subparams(&fields, &scheme)?;

    let estimator = parse_estimator(&fields)?;
    let defect_model = parse_defect_model(&fields)?;
    reject_foreign_estimator_params(&fields, &estimator, &defect_model)?;

    let block_trials = match fields.uint_field("block_trials")? {
        None => None,
        Some(n) => {
            let n = usize::try_from(n)
                .map_err(|_| RequestError::bad("'block_trials' is out of range"))?;
            if n > MAX_BLOCK_TRIALS {
                return Err(RequestError::bad(format!(
                    "need 'block_trials' <= {MAX_BLOCK_TRIALS}, got {n} \
                     (wider batches only grow the per-worker scratch state)"
                )));
            }
            Some(n)
        }
    };

    if matches!(defect_model, DefectModelChoice::Clustered(_)) {
        if fields.has("p") {
            return Err(RequestError::bad(
                "'p' does not apply with \"defect_model\": \"clustered\" \
                 (the cluster parameters set the defect intensity)",
            ));
        }
        if fields.has("block_trials") {
            return Err(RequestError::bad(
                "'block_trials' does not apply with \"defect_model\": \"clustered\": \
                 the clustered defect sampler draws a variable-length stream per trial \
                 that cannot be transposed into lanes; it always runs the scalar engine",
            ));
        }
    }

    let assay = match fields.str_field("assay")? {
        None => None,
        Some(label) => Some(label.parse::<AssayPanel>().map_err(RequestError::bad)?),
    };

    check_tier(
        &fields,
        tier,
        &scheme,
        assay.is_some(),
        &estimator,
        &defect_model,
    )?;

    let p = fields.f64_field("p")?.unwrap_or(0.95);
    if !(0.0..=1.0).contains(&p) {
        return Err(RequestError::bad(format!("need 0 <= 'p' <= 1, got {p}")));
    }
    let trials = match fields.uint_field("trials")?.unwrap_or(10_000) {
        0 => return Err(RequestError::bad("'trials' must be at least 1")),
        n if n > u64::from(MAX_TRIALS) => {
            return Err(RequestError::bad(format!(
                "need 'trials' <= {MAX_TRIALS}, got {n}"
            )))
        }
        n => n as u32,
    };
    let seed = fields.uint_field("seed")?.unwrap_or(1);

    let cache = match fields.str_field("cache")? {
        None | Some("default") => CacheMode::Default,
        Some("bypass") => CacheMode::Bypass,
        Some(other) => {
            return Err(RequestError::bad(format!(
                "unknown cache mode '{other}' (valid: default, bypass)"
            )))
        }
    };

    Ok(YieldRequest {
        tier,
        scheme,
        assay,
        estimator,
        defect_model,
        block_trials,
        p,
        trials,
        seed,
        cache,
    })
}

fn parse_scheme(fields: &Fields<'_>) -> Result<SchemeChoice, RequestError> {
    match fields.str_field("scheme")? {
        None | Some("hex-dtmb") => {
            let design = match fields.str_field("design")? {
                None | Some("none") => None,
                Some("dtmb16") => Some(DtmbKind::Dtmb16),
                Some("dtmb26") => Some(DtmbKind::Dtmb26A),
                Some("dtmb26b") => Some(DtmbKind::Dtmb26B),
                Some("dtmb36") => Some(DtmbKind::Dtmb36),
                Some("dtmb44") => Some(DtmbKind::Dtmb44),
                Some(other) => return Err(RequestError::bad(format!("unknown design '{other}'"))),
            };
            let primaries = match fields.uint_field("primaries")?.unwrap_or(100) {
                0 => return Err(RequestError::bad("'primaries' must be at least 1")),
                n if n > MAX_PRIMARIES as u64 => {
                    return Err(RequestError::bad(format!(
                        "need 'primaries' <= {MAX_PRIMARIES}, got {n}"
                    )))
                }
                n => n as usize,
            };
            Ok(SchemeChoice::HexDtmb { design, primaries })
        }
        Some("square-dtmb") => {
            let pattern = match fields.str_field("pattern")? {
                None | Some("perfect-code") => SquarePattern::PerfectCode,
                Some("stripes") => SquarePattern::Stripes,
                Some("checkerboard") => SquarePattern::Checkerboard,
                Some("quarter") => SquarePattern::Quarter,
                Some(other) => {
                    return Err(RequestError::bad(format!(
                        "unknown pattern '{other}' \
                         (valid: perfect-code, stripes, checkerboard, quarter)"
                    )))
                }
            };
            Ok(SchemeChoice::SquareDtmb {
                pattern,
                width: fields.dim_field("width", 16, 1)?,
                height: fields.dim_field("height", 16, 1)?,
            })
        }
        Some("spare-rows") => Ok(SchemeChoice::SpareRows {
            width: fields.dim_field("width", 8, 1)?,
            module_rows: fields.dim_field("module_rows", 6, 1)?,
            spare_rows: fields.dim_field("spare_rows", 1, 0)?,
        }),
        Some(other) => Err(RequestError::bad(format!(
            "unknown scheme '{other}' (valid: hex-dtmb, square-dtmb, spare-rows)"
        ))),
    }
}

fn parse_estimator(fields: &Fields<'_>) -> Result<EstimatorChoice, RequestError> {
    match fields.str_field("estimator")? {
        None | Some("naive") => Ok(EstimatorChoice::Naive),
        Some("stratified") => {
            let tolerance = fields.f64_field("tolerance")?.unwrap_or(1e-6);
            if !(0.0..1.0).contains(&tolerance) {
                return Err(RequestError::bad("need 0 <= 'tolerance' < 1"));
            }
            let pilot = match fields.uint_field("pilot")?.unwrap_or(64) {
                0 => return Err(RequestError::bad("'pilot' must be at least 1")),
                n if n > u64::from(u32::MAX) => {
                    return Err(RequestError::bad("'pilot' is out of range"))
                }
                n => n as u32,
            };
            Ok(EstimatorChoice::Stratified(StratifiedConfig {
                tolerance,
                pilot,
                ..StratifiedConfig::default()
            }))
        }
        Some(other) => Err(RequestError::bad(format!(
            "unknown estimator '{other}' (valid: naive, stratified)"
        ))),
    }
}

fn parse_defect_model(fields: &Fields<'_>) -> Result<DefectModelChoice, RequestError> {
    match fields.str_field("defect_model")? {
        None | Some("bernoulli") => Ok(DefectModelChoice::Bernoulli),
        Some("clustered") => {
            let mean = fields.f64_field("cluster_mean")?.unwrap_or(1.0);
            if mean < 0.0 {
                return Err(RequestError::bad("'cluster_mean' must be non-negative"));
            }
            let dispersion = match fields.uint_field("cluster_dispersion")?.unwrap_or(1) {
                0 => return Err(RequestError::bad("'cluster_dispersion' must be at least 1")),
                n if n > u64::from(u32::MAX) => {
                    return Err(RequestError::bad("'cluster_dispersion' is out of range"))
                }
                n => n as u32,
            };
            let radius = match fields.uint_field("cluster_radius")?.unwrap_or(2) {
                n if n > 64 => return Err(RequestError::bad("need 'cluster_radius' <= 64")),
                n => n as u32,
            };
            let peak = fields.f64_field("cluster_peak")?.unwrap_or(0.8);
            if !(0.0..=1.0).contains(&peak) {
                return Err(RequestError::bad("need 0 <= 'cluster_peak' <= 1"));
            }
            Ok(DefectModelChoice::Clustered(ClusteredDefects::new(
                mean, dispersion, radius, peak,
            )))
        }
        Some(other) => Err(RequestError::bad(format!(
            "unknown defect model '{other}' (valid: bernoulli, clustered)"
        ))),
    }
}

/// The CLI's `reject_foreign_subparams`, field-presence based.
fn reject_foreign_subparams(
    fields: &Fields<'_>,
    choice: &SchemeChoice,
) -> Result<(), RequestError> {
    let (scheme, allowed): (&str, &[&str]) = match choice {
        SchemeChoice::HexDtmb { .. } => ("hex-dtmb", &["design", "primaries"]),
        SchemeChoice::SquareDtmb { .. } => ("square-dtmb", &["pattern", "width", "height"]),
        SchemeChoice::SpareRows { .. } => ("spare-rows", &["width", "module_rows", "spare_rows"]),
    };
    for key in SCHEME_SUBPARAMS {
        if fields.has(key) && !allowed.contains(&key) {
            return Err(RequestError::bad(format!(
                "'{key}' does not apply to scheme '{scheme}' (its parameters: {})",
                allowed.join(", ")
            )));
        }
    }
    Ok(())
}

/// The CLI's `reject_foreign_estimator_params`: estimator/model
/// sub-parameters must match their selection, and the stratified
/// estimator cannot run under the clustered model (it conditions on the
/// i.i.d. Bernoulli defect count).
fn reject_foreign_estimator_params(
    fields: &Fields<'_>,
    estimator: &EstimatorChoice,
    model: &DefectModelChoice,
) -> Result<(), RequestError> {
    if matches!(estimator, EstimatorChoice::Naive) {
        for key in ESTIMATOR_SUBPARAMS {
            if fields.has(key) {
                return Err(RequestError::bad(format!(
                    "'{key}' requires \"estimator\": \"stratified\""
                )));
            }
        }
    }
    if matches!(model, DefectModelChoice::Bernoulli) {
        for key in CLUSTER_SUBPARAMS {
            if fields.has(key) {
                return Err(RequestError::bad(format!(
                    "'{key}' requires \"defect_model\": \"clustered\""
                )));
            }
        }
    }
    if matches!(estimator, EstimatorChoice::Stratified(_))
        && matches!(model, DefectModelChoice::Clustered(_))
    {
        return Err(RequestError::bad(
            "the stratified estimator conditions on the i.i.d. Bernoulli defect count; \
             it cannot run under the clustered defect model",
        ));
    }
    Ok(())
}

/// Tier-specific coherence rules.
fn check_tier(
    fields: &Fields<'_>,
    tier: Tier,
    scheme: &SchemeChoice,
    has_assay: bool,
    estimator: &EstimatorChoice,
    model: &DefectModelChoice,
) -> Result<(), RequestError> {
    match tier {
        Tier::Raw => {
            if !matches!(scheme, SchemeChoice::HexDtmb { .. }) {
                return Err(RequestError::bad(
                    "tier 'raw' models hexagonal arrays only \
                     (raw yield is defined over the hex chip's primary cells)",
                ));
            }
            if has_assay {
                return Err(RequestError::bad(
                    "'assay' implies tier 'operational', not 'raw'",
                ));
            }
            if matches!(estimator, EstimatorChoice::Stratified(_)) {
                return Err(RequestError::bad(
                    "tier 'raw' supports the naive estimator only \
                     (use tier 'operational' for stratified raw yield)",
                ));
            }
            if matches!(model, DefectModelChoice::Clustered(_)) {
                return Err(RequestError::bad(
                    "tier 'raw' supports the Bernoulli defect model only \
                     (use tier 'operational' for clustered raw yield)",
                ));
            }
            if fields.has("block_trials") {
                return Err(RequestError::bad(
                    "'block_trials' does not apply to tier 'raw': raw yield runs the \
                     per-trial defect-injection engine, not the matching block engine",
                ));
            }
        }
        Tier::Reconfigured => {
            if has_assay {
                return Err(RequestError::bad(
                    "'assay' implies tier 'operational'; \
                     set \"tier\": \"operational\" to run the assay-aware stack",
                ));
            }
        }
        Tier::Operational => {
            if !has_assay {
                return Err(RequestError::bad(
                    "tier 'operational' requires 'assay' \
                     (valid: ivd-panel, metabolic-panel)",
                ));
            }
            if !matches!(scheme, SchemeChoice::HexDtmb { .. }) {
                return Err(RequestError::bad(
                    "'assay' requires scheme 'hex-dtmb' \
                     (the IVD case-study chip is hexagonal)",
                ));
            }
            // The assay workload fixes the chip to the DTMB(2,6) IVD
            // case-study layout, so every array-shaping field is foreign —
            // the CLI's `check_assay_subparams`.
            for key in SCHEME_SUBPARAMS {
                if fields.has(key) {
                    return Err(RequestError::bad(format!(
                        "'{key}' does not apply with 'assay': the assay workload \
                         fixes the chip to the DTMB(2,6) IVD case-study layout"
                    )));
                }
            }
            if matches!(estimator, EstimatorChoice::Stratified(_)) && fields.has("block_trials") {
                return Err(RequestError::bad(
                    "'block_trials' does not apply to the operational stratified \
                     estimator: it conditions each stratum on its defect count, already \
                     skipping the defect-free bulk the block engine short-circuits",
                ));
            }
        }
    }
    Ok(())
}

impl YieldRequest {
    /// The canonical engine key this request maps to: exactly the fields
    /// that shape the cached evaluator (scheme/shape, assay chip,
    /// trial-engine width) and none of the per-request ones (`p`,
    /// `trials`, `seed`, estimator, defect model). Two requests with
    /// equal keys run on the same cached engine.
    #[must_use]
    pub fn engine_key(&self) -> String {
        let block = match self.block_trials {
            None => "auto".to_string(),
            Some(0) => "scalar".to_string(),
            Some(n) => n.to_string(),
        };
        if let Some(panel) = self.assay {
            return format!("assay:{}:block={block}", panel.label());
        }
        match self.scheme {
            SchemeChoice::HexDtmb { design, primaries } => format!(
                "hex-dtmb:design={}:primaries={primaries}:block={block}",
                design.map_or("none".to_string(), |k| k.to_string())
            ),
            SchemeChoice::SquareDtmb {
                pattern,
                width,
                height,
            } => format!(
                "square-dtmb:pattern={pattern:?}:width={width}:height={height}:block={block}"
            ),
            SchemeChoice::SpareRows {
                width,
                module_rows,
                spare_rows,
            } => format!(
                "spare-rows:width={width}:module-rows={module_rows}:spare-rows={spare_rows}:block={block}"
            ),
        }
    }

    /// Builds the hex biochip this request describes (hex schemes only).
    #[must_use]
    pub fn biochip(&self) -> Biochip {
        match self.scheme {
            SchemeChoice::HexDtmb { design, primaries } => match design {
                Some(kind) => Biochip::dtmb(kind, primaries),
                None => Biochip::without_redundancy(primaries),
            },
            _ => unreachable!("biochip() is only called on hex schemes"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(body: &str) -> Result<YieldRequest, RequestError> {
        parse_yield_request(body.as_bytes())
    }

    #[test]
    fn minimal_request_fills_cli_defaults() {
        let r = parse(r#"{}"#).unwrap();
        assert_eq!(r.tier, Tier::Reconfigured);
        assert_eq!(
            r.scheme,
            SchemeChoice::HexDtmb {
                design: None,
                primaries: 100
            }
        );
        assert!(matches!(r.estimator, EstimatorChoice::Naive));
        assert!(matches!(r.defect_model, DefectModelChoice::Bernoulli));
        assert_eq!((r.p, r.trials, r.seed), (0.95, 10_000, 1));
        assert_eq!(r.cache, CacheMode::Default);
    }

    #[test]
    fn foreign_scheme_subparams_are_rejected() {
        let err = parse(r#"{"scheme": "hex-dtmb", "pattern": "stripes"}"#).unwrap_err();
        assert!(err.message.contains("does not apply to scheme 'hex-dtmb'"));
        let err = parse(r#"{"scheme": "square-dtmb", "design": "dtmb26"}"#).unwrap_err();
        assert!(err.message.contains("square-dtmb"));
        let err = parse(r#"{"scheme": "spare-rows", "height": 4}"#).unwrap_err();
        assert!(err.message.contains("spare-rows"));
    }

    #[test]
    fn foreign_estimator_and_model_params_are_rejected() {
        assert!(parse(r#"{"pilot": 8}"#)
            .unwrap_err()
            .message
            .contains("stratified"));
        assert!(parse(r#"{"cluster_mean": 2.0}"#)
            .unwrap_err()
            .message
            .contains("clustered"));
        let err = parse(r#"{"estimator": "stratified", "defect_model": "clustered"}"#).unwrap_err();
        assert!(err.message.contains("Bernoulli defect count"));
    }

    #[test]
    fn clustered_rejects_p_and_block_trials() {
        assert!(parse(r#"{"defect_model": "clustered", "p": 0.9}"#).is_err());
        assert!(parse(r#"{"defect_model": "clustered", "block_trials": 64}"#).is_err());
        assert!(parse(r#"{"defect_model": "clustered"}"#).is_ok());
    }

    #[test]
    fn tier_rules_hold() {
        assert!(parse(r#"{"tier": "raw", "scheme": "square-dtmb"}"#).is_err());
        assert!(parse(r#"{"tier": "raw", "estimator": "stratified"}"#).is_err());
        assert!(parse(r#"{"tier": "raw", "block_trials": 0}"#).is_err());
        assert!(parse(r#"{"tier": "raw", "design": "dtmb26"}"#).is_ok());
        assert!(parse(r#"{"tier": "operational"}"#).is_err());
        assert!(parse(r#"{"tier": "operational", "assay": "ivd-panel"}"#).is_ok());
        assert!(parse(r#"{"assay": "ivd-panel"}"#).is_err());
        let err = parse(r#"{"tier": "operational", "assay": "ivd-panel", "design": "dtmb16"}"#)
            .unwrap_err();
        assert!(err.message.contains("case-study layout"));
        assert!(parse(
            r#"{"tier": "operational", "assay": "ivd-panel",
                "estimator": "stratified", "block_trials": 64}"#
        )
        .is_err());
    }

    #[test]
    fn unknown_and_duplicate_fields_are_rejected() {
        assert!(parse(r#"{"triaals": 10}"#)
            .unwrap_err()
            .message
            .contains("unknown field"));
        assert!(parse(r#"{"seed": 1, "seed": 2}"#)
            .unwrap_err()
            .message
            .contains("duplicate field"));
    }

    #[test]
    fn service_ceilings_apply() {
        assert!(parse(r#"{"primaries": 1000000}"#).is_err());
        assert!(parse(r#"{"trials": 100000000}"#).is_err());
        assert!(parse(r#"{"block_trials": 100000}"#).is_err());
        assert!(parse(r#"{"scheme": "square-dtmb", "width": 5000}"#).is_err());
        assert!(parse(r#"{"trials": 0}"#).is_err());
        assert!(parse(r#"{"seed": -1}"#).is_err());
        assert!(parse(r#"{"p": 1.5}"#).is_err());
    }

    #[test]
    fn engine_key_separates_engines_not_requests() {
        let a = parse(r#"{"design": "dtmb26", "p": 0.9, "seed": 7}"#).unwrap();
        let b = parse(r#"{"design": "dtmb26", "p": 0.99, "trials": 50, "seed": 8}"#).unwrap();
        assert_eq!(a.engine_key(), b.engine_key());
        let c = parse(r#"{"design": "dtmb36"}"#).unwrap();
        assert_ne!(a.engine_key(), c.engine_key());
        let d = parse(r#"{"design": "dtmb26", "block_trials": 128}"#).unwrap();
        assert_ne!(a.engine_key(), d.engine_key());
        let e = parse(r#"{"tier": "operational", "assay": "ivd-panel"}"#).unwrap();
        assert!(e.engine_key().starts_with("assay:ivd-panel"));
    }
}
