//! Strict parsing and validation of `/v1/yield` request bodies.
//!
//! The request vocabulary is the CLI's, field for field: the same scheme
//! sub-parameters, estimator and defect-model selections, and the same
//! *foreign-parameter rejection* discipline — a field the selected
//! scheme/estimator/model/tier would silently ignore is refused with a
//! `400` naming the conflict, never dropped. A daemon that ignored stray
//! fields would happily serve numbers under a mislabelled configuration,
//! which is exactly the failure mode the CLI guards rule out.
//!
//! The vocabulary itself — token tables, sub-parameter ownership, and the
//! coherence rules — lives in [`dmfb_core::spec`] and is shared with the
//! CLI and the search enumerator; this module only adds the JSON framing
//! (field-presence tracking, duplicate/unknown-field rejection) and
//! untrusted-input ceilings ([`MAX_PRIMARIES`], [`MAX_TRIALS`]): a CLI
//! user who asks for a billion-cell array only hurts themselves; a
//! network client must not be able to park a worker (or the allocator)
//! with one request.

use dmfb_bench::json::JsonValue;
use dmfb_core::prelude::{AssayPanel, Biochip, ClusteredDefects, StratifiedConfig};
use dmfb_core::spec::{self, DefectModelKind, EstimatorKind, ParamStyle, SchemeKind};

/// The shared scheme descriptor (see [`dmfb_core::spec::SchemeSpec`]),
/// under the name this crate has always exported.
pub use dmfb_core::spec::SchemeSpec as SchemeChoice;
/// The shared tier selection (see [`dmfb_core::spec::Tier`]).
pub use dmfb_core::spec::Tier;
pub use dmfb_core::spec::{
    EngineParams, EngineSpec, MAX_BLOCK_TRIALS, MAX_DIM, MAX_PRIMARIES, MAX_TRIALS,
};

/// A validation failure, carrying the HTTP status it maps to (always
/// `400` today, but the type keeps routing and phrasing in one place).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestError {
    /// HTTP status code for the reply.
    pub status: u16,
    /// Human-readable reason, sent back as `{"error": ...}`.
    pub message: String,
}

impl RequestError {
    fn bad(message: impl Into<String>) -> Self {
        RequestError {
            status: 400,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// Estimator selection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EstimatorChoice {
    /// Plain Monte-Carlo (the default).
    Naive,
    /// Defect-count-stratified rare-event estimator with its tuning.
    Stratified(StratifiedConfig),
}

impl EstimatorChoice {
    fn kind(&self) -> EstimatorKind {
        match self {
            EstimatorChoice::Naive => EstimatorKind::Naive,
            EstimatorChoice::Stratified(_) => EstimatorKind::Stratified,
        }
    }
}

/// Defect-model selection.
#[derive(Clone, Debug)]
pub enum DefectModelChoice {
    /// The paper's i.i.d. cell-failure assumption (the default).
    Bernoulli,
    /// Negative-binomial clustered wafer defects.
    Clustered(ClusteredDefects),
}

impl DefectModelChoice {
    fn kind(&self) -> DefectModelKind {
        match self {
            DefectModelChoice::Bernoulli => DefectModelKind::Bernoulli,
            DefectModelChoice::Clustered(_) => DefectModelKind::Clustered,
        }
    }
}

/// Cache directive for this request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheMode {
    /// Use the engine cache (the default).
    Default,
    /// Rebuild the engine from scratch, leaving the cache untouched. The
    /// reply body is identical either way; only timing differs. The soak
    /// harness uses this as its cold reference.
    Bypass,
}

/// One fully validated `/v1/yield` request.
#[derive(Clone, Debug)]
pub struct YieldRequest {
    /// Requested tier.
    pub tier: Tier,
    /// Requested scheme (ignored shape-wise when `assay` fixes the chip).
    pub scheme: SchemeChoice,
    /// Assay panel (`Some` exactly when `tier` is operational).
    pub assay: Option<AssayPanel>,
    /// Estimator selection.
    pub estimator: EstimatorChoice,
    /// Defect-model selection.
    pub defect_model: DefectModelChoice,
    /// Trial-engine selection: `None` = auto block engine, `Some(0)` =
    /// scalar, `Some(n)` = `n`-trial batches.
    pub block_trials: Option<usize>,
    /// Cell-survival probability (unused by the clustered model).
    pub p: f64,
    /// Monte-Carlo trials (the total budget under the stratified
    /// estimator).
    pub trials: u32,
    /// Master seed. The engine seeds each estimate through
    /// [`dmfb_core::sim::SeedSequence`], so replies are byte-identical
    /// for identical requests regardless of worker or thread count.
    pub seed: u64,
    /// Cache directive.
    pub cache: CacheMode,
}

/// The service-level fields `/v1/yield` adds on top of the shared
/// scheme/estimator/model sub-parameter tables.
const TOP_FIELDS: [&str; 10] = [
    "tier",
    "scheme",
    "estimator",
    "defect_model",
    "block_trials",
    "assay",
    "p",
    "trials",
    "seed",
    "cache",
];

/// Whether `/v1/yield` understands a field; anything else is rejected by
/// name so typos cannot silently select a default. The sub-parameter
/// vocabulary comes straight from [`dmfb_core::spec`], so a scheme
/// parameter added there is automatically known here.
fn is_known_field(key: &str) -> bool {
    TOP_FIELDS.contains(&key)
        || spec::SCHEME_SUBPARAMS.contains(&key)
        || spec::ESTIMATOR_SUBPARAMS.contains(&key)
        || spec::CLUSTER_SUBPARAMS.contains(&key)
}

/// A parsed body with field-presence tracking, so the foreign-parameter
/// guards can distinguish "absent" from "present at its default value"
/// exactly like the CLI's `Options::flag`.
struct Fields<'a> {
    obj: &'a [(String, JsonValue)],
}

impl<'a> Fields<'a> {
    fn has(&self, key: &str) -> bool {
        self.obj.iter().any(|(k, _)| k == key)
    }

    fn str_field(&self, key: &str) -> Result<Option<&'a str>, RequestError> {
        match self.obj.iter().find(|(k, _)| k == key) {
            None => Ok(None),
            Some((_, v)) => v.as_str(key).map(Some).map_err(RequestError::bad),
        }
    }

    fn f64_field(&self, key: &str) -> Result<Option<f64>, RequestError> {
        match self.obj.iter().find(|(k, _)| k == key) {
            None => Ok(None),
            Some((_, v)) => {
                let x = v.as_f64(key).map_err(RequestError::bad)?;
                if x.is_finite() {
                    Ok(Some(x))
                } else {
                    Err(RequestError::bad(format!("'{key}' must be finite")))
                }
            }
        }
    }

    /// A non-negative integer field. JSON numbers are doubles, so the
    /// value must be integral and at most 2^53 to be trusted.
    fn uint_field(&self, key: &str) -> Result<Option<u64>, RequestError> {
        match self.f64_field(key)? {
            None => Ok(None),
            Some(x) => {
                if x < 0.0 || x.fract() != 0.0 || x > 9_007_199_254_740_992.0 {
                    return Err(RequestError::bad(format!(
                        "'{key}' must be a non-negative integer, got {x}"
                    )));
                }
                Ok(Some(x as u64))
            }
        }
    }

    fn dim_field(&self, key: &str, default: u32, min: u32) -> Result<u32, RequestError> {
        let value = match self.uint_field(key)? {
            None => return Ok(default),
            Some(v) => u32::try_from(v)
                .map_err(|_| RequestError::bad(format!("'{key}' is out of range")))?,
        };
        if value < min || value > MAX_DIM {
            return Err(RequestError::bad(spec::dim_range_error(
                ParamStyle::Json,
                key,
                min,
                value,
            )));
        }
        Ok(value)
    }
}

/// Parses and fully validates one `/v1/yield` body.
pub fn parse_yield_request(body: &[u8]) -> Result<YieldRequest, RequestError> {
    let text =
        std::str::from_utf8(body).map_err(|_| RequestError::bad("request body is not UTF-8"))?;
    let value = JsonValue::parse(text).map_err(RequestError::bad)?;
    let obj = value.as_object("request body").map_err(RequestError::bad)?;
    for (key, _) in obj {
        if !is_known_field(key.as_str()) {
            return Err(RequestError::bad(format!("unknown field '{key}'")));
        }
    }
    if let Some(dup) = obj
        .iter()
        .enumerate()
        .find(|(i, (k, _))| obj[..*i].iter().any(|(prev, _)| prev == k))
    {
        return Err(RequestError::bad(format!("duplicate field '{}'", dup.1 .0)));
    }
    let fields = Fields { obj };

    let tier = Tier::parse(fields.str_field("tier")?).map_err(RequestError::bad)?;

    let scheme = parse_scheme(&fields)?;
    spec::reject_foreign_subparams(ParamStyle::Json, &scheme, |key| fields.has(key))
        .map_err(RequestError::bad)?;

    let estimator = parse_estimator(&fields)?;
    let defect_model = parse_defect_model(&fields)?;
    spec::reject_foreign_estimator_params(
        ParamStyle::Json,
        estimator.kind(),
        defect_model.kind(),
        |key| fields.has(key),
    )
    .map_err(RequestError::bad)?;

    let block_trials = match fields.uint_field("block_trials")? {
        None => None,
        Some(n) => {
            let n = usize::try_from(n)
                .map_err(|_| RequestError::bad("'block_trials' is out of range"))?;
            if n > MAX_BLOCK_TRIALS {
                return Err(RequestError::bad(spec::block_trials_cap_error(
                    ParamStyle::Json,
                    n,
                )));
            }
            Some(n)
        }
    };

    if matches!(defect_model, DefectModelChoice::Clustered(_)) {
        if fields.has("p") {
            return Err(RequestError::bad(spec::clustered_p_error(ParamStyle::Json)));
        }
        if fields.has("block_trials") {
            return Err(RequestError::bad(format!(
                "'block_trials' does not apply with \"defect_model\": \"clustered\": {}",
                spec::CLUSTERED_BLOCK_REASON
            )));
        }
    }

    let assay = match fields.str_field("assay")? {
        None => None,
        Some(label) => Some(label.parse::<AssayPanel>().map_err(RequestError::bad)?),
    };

    check_tier(
        &fields,
        tier,
        &scheme,
        assay.is_some(),
        &estimator,
        &defect_model,
    )?;

    let p = fields.f64_field("p")?.unwrap_or(0.95);
    if !(0.0..=1.0).contains(&p) {
        return Err(RequestError::bad(format!("need 0 <= 'p' <= 1, got {p}")));
    }
    let trials = match fields.uint_field("trials")?.unwrap_or(10_000) {
        0 => return Err(RequestError::bad("'trials' must be at least 1")),
        n if n > u64::from(MAX_TRIALS) => {
            return Err(RequestError::bad(format!(
                "need 'trials' <= {MAX_TRIALS}, got {n}"
            )))
        }
        n => n as u32,
    };
    let seed = fields.uint_field("seed")?.unwrap_or(1);

    let cache = match fields.str_field("cache")? {
        None | Some("default") => CacheMode::Default,
        Some("bypass") => CacheMode::Bypass,
        Some(other) => {
            return Err(RequestError::bad(format!(
                "unknown cache mode '{other}' (valid: default, bypass)"
            )))
        }
    };

    Ok(YieldRequest {
        tier,
        scheme,
        assay,
        estimator,
        defect_model,
        block_trials,
        p,
        trials,
        seed,
        cache,
    })
}

fn parse_scheme(fields: &Fields<'_>) -> Result<SchemeChoice, RequestError> {
    let kind = spec::parse_scheme_token(fields.str_field("scheme")?).map_err(RequestError::bad)?;
    match kind {
        SchemeKind::HexDtmb => {
            let design =
                spec::parse_design_token(fields.str_field("design")?).map_err(RequestError::bad)?;
            let primaries = match fields.uint_field("primaries")?.unwrap_or(100) {
                0 => return Err(RequestError::bad("'primaries' must be at least 1")),
                n if n > MAX_PRIMARIES as u64 => {
                    return Err(RequestError::bad(format!(
                        "need 'primaries' <= {MAX_PRIMARIES}, got {n}"
                    )))
                }
                n => n as usize,
            };
            Ok(SchemeChoice::HexDtmb { design, primaries })
        }
        SchemeKind::SquareDtmb => {
            let pattern = spec::parse_pattern_token(fields.str_field("pattern")?)
                .map_err(RequestError::bad)?;
            Ok(SchemeChoice::SquareDtmb {
                pattern,
                width: fields.dim_field("width", 16, 1)?,
                height: fields.dim_field("height", 16, 1)?,
            })
        }
        SchemeKind::SpareRows => Ok(SchemeChoice::SpareRows {
            width: fields.dim_field("width", 8, 1)?,
            module_rows: fields.dim_field("module_rows", 6, 1)?,
            spare_rows: fields.dim_field("spare_rows", 1, 0)?,
        }),
    }
}

fn parse_estimator(fields: &Fields<'_>) -> Result<EstimatorChoice, RequestError> {
    match spec::parse_estimator_token(fields.str_field("estimator")?).map_err(RequestError::bad)? {
        EstimatorKind::Naive => Ok(EstimatorChoice::Naive),
        EstimatorKind::Stratified => {
            let tolerance = fields.f64_field("tolerance")?.unwrap_or(1e-6);
            if !(0.0..1.0).contains(&tolerance) {
                return Err(RequestError::bad("need 0 <= 'tolerance' < 1"));
            }
            let pilot = match fields.uint_field("pilot")?.unwrap_or(64) {
                0 => return Err(RequestError::bad("'pilot' must be at least 1")),
                n if n > u64::from(u32::MAX) => {
                    return Err(RequestError::bad("'pilot' is out of range"))
                }
                n => n as u32,
            };
            Ok(EstimatorChoice::Stratified(StratifiedConfig {
                tolerance,
                pilot,
                ..StratifiedConfig::default()
            }))
        }
    }
}

fn parse_defect_model(fields: &Fields<'_>) -> Result<DefectModelChoice, RequestError> {
    match spec::parse_defect_model_token(fields.str_field("defect_model")?)
        .map_err(RequestError::bad)?
    {
        DefectModelKind::Bernoulli => Ok(DefectModelChoice::Bernoulli),
        DefectModelKind::Clustered => {
            let mean = fields.f64_field("cluster_mean")?.unwrap_or(1.0);
            if mean < 0.0 {
                return Err(RequestError::bad("'cluster_mean' must be non-negative"));
            }
            let dispersion = match fields.uint_field("cluster_dispersion")?.unwrap_or(1) {
                0 => return Err(RequestError::bad("'cluster_dispersion' must be at least 1")),
                n if n > u64::from(u32::MAX) => {
                    return Err(RequestError::bad("'cluster_dispersion' is out of range"))
                }
                n => n as u32,
            };
            let radius = match fields.uint_field("cluster_radius")?.unwrap_or(2) {
                n if n > 64 => return Err(RequestError::bad("need 'cluster_radius' <= 64")),
                n => n as u32,
            };
            let peak = fields.f64_field("cluster_peak")?.unwrap_or(0.8);
            if !(0.0..=1.0).contains(&peak) {
                return Err(RequestError::bad("need 0 <= 'cluster_peak' <= 1"));
            }
            Ok(DefectModelChoice::Clustered(ClusteredDefects::new(
                mean, dispersion, radius, peak,
            )))
        }
    }
}

/// Tier-specific coherence rules.
fn check_tier(
    fields: &Fields<'_>,
    tier: Tier,
    scheme: &SchemeChoice,
    has_assay: bool,
    estimator: &EstimatorChoice,
    model: &DefectModelChoice,
) -> Result<(), RequestError> {
    match tier {
        Tier::Raw => {
            if !matches!(scheme, SchemeChoice::HexDtmb { .. }) {
                return Err(RequestError::bad(
                    "tier 'raw' models hexagonal arrays only \
                     (raw yield is defined over the hex chip's primary cells)",
                ));
            }
            if has_assay {
                return Err(RequestError::bad(
                    "'assay' implies tier 'operational', not 'raw'",
                ));
            }
            if matches!(estimator, EstimatorChoice::Stratified(_)) {
                return Err(RequestError::bad(
                    "tier 'raw' supports the naive estimator only \
                     (use tier 'operational' for stratified raw yield)",
                ));
            }
            if matches!(model, DefectModelChoice::Clustered(_)) {
                return Err(RequestError::bad(
                    "tier 'raw' supports the Bernoulli defect model only \
                     (use tier 'operational' for clustered raw yield)",
                ));
            }
            if fields.has("block_trials") {
                return Err(RequestError::bad(
                    "'block_trials' does not apply to tier 'raw': raw yield runs the \
                     per-trial defect-injection engine, not the matching block engine",
                ));
            }
        }
        Tier::Reconfigured => {
            if has_assay {
                return Err(RequestError::bad(
                    "'assay' implies tier 'operational'; \
                     set \"tier\": \"operational\" to run the assay-aware stack",
                ));
            }
        }
        Tier::Operational => {
            if !has_assay {
                return Err(RequestError::bad(
                    "tier 'operational' requires 'assay' \
                     (valid: ivd-panel, metabolic-panel)",
                ));
            }
            // The assay workload fixes the chip to the DTMB(2,6) IVD
            // case-study layout, so the scheme must be hexagonal and every
            // array-shaping field is foreign — the shared assay guard.
            spec::check_assay_subparams(
                ParamStyle::Json,
                matches!(scheme, SchemeChoice::HexDtmb { .. }),
                |key| fields.has(key),
            )
            .map_err(RequestError::bad)?;
            if matches!(estimator, EstimatorChoice::Stratified(_)) && fields.has("block_trials") {
                return Err(RequestError::bad(
                    "'block_trials' does not apply to the operational stratified \
                     estimator: it conditions each stratum on its defect count, already \
                     skipping the defect-free bulk the block engine short-circuits",
                ));
            }
        }
    }
    Ok(())
}

impl YieldRequest {
    /// The engine descriptor this request maps to: exactly the fields
    /// that shape the cached evaluator (scheme/shape, assay chip,
    /// trial-engine width) and none of the per-request ones (`p`,
    /// `trials`, `seed`, estimator, defect model). Two requests with
    /// equal descriptors run on the same cached engine.
    #[must_use]
    pub fn engine_params(&self) -> EngineParams {
        let spec = match self.assay {
            Some(panel) => EngineSpec::Assay(panel),
            None => EngineSpec::Scheme(self.scheme),
        };
        EngineParams {
            spec,
            block_trials: self.block_trials,
        }
    }

    /// The canonical engine-cache key: the [`SchemeSpec`] canonical form
    /// plus the trial-engine width (see [`EngineParams::engine_key`]).
    ///
    /// [`SchemeSpec`]: dmfb_core::spec::SchemeSpec
    #[must_use]
    pub fn engine_key(&self) -> String {
        self.engine_params().engine_key()
    }

    /// Builds the hex biochip this request describes (hex schemes only).
    #[must_use]
    pub fn biochip(&self) -> Biochip {
        self.scheme
            .biochip()
            .expect("biochip() is only called on hex schemes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(body: &str) -> Result<YieldRequest, RequestError> {
        parse_yield_request(body.as_bytes())
    }

    #[test]
    fn minimal_request_fills_cli_defaults() {
        let r = parse(r#"{}"#).unwrap();
        assert_eq!(r.tier, Tier::Reconfigured);
        assert_eq!(
            r.scheme,
            SchemeChoice::HexDtmb {
                design: None,
                primaries: 100
            }
        );
        assert!(matches!(r.estimator, EstimatorChoice::Naive));
        assert!(matches!(r.defect_model, DefectModelChoice::Bernoulli));
        assert_eq!((r.p, r.trials, r.seed), (0.95, 10_000, 1));
        assert_eq!(r.cache, CacheMode::Default);
    }

    #[test]
    fn foreign_scheme_subparams_are_rejected() {
        let err = parse(r#"{"scheme": "hex-dtmb", "pattern": "stripes"}"#).unwrap_err();
        assert_eq!(
            err.message,
            "'pattern' does not apply to scheme 'hex-dtmb' \
             (its parameters: design, primaries)"
        );
        let err = parse(r#"{"scheme": "square-dtmb", "design": "dtmb26"}"#).unwrap_err();
        assert!(err.message.contains("square-dtmb"));
        let err = parse(r#"{"scheme": "spare-rows", "height": 4}"#).unwrap_err();
        assert!(err.message.contains("spare-rows"));
    }

    #[test]
    fn foreign_estimator_and_model_params_are_rejected() {
        assert_eq!(
            parse(r#"{"pilot": 8}"#).unwrap_err().message,
            "'pilot' requires \"estimator\": \"stratified\""
        );
        assert_eq!(
            parse(r#"{"cluster_mean": 2.0}"#).unwrap_err().message,
            "'cluster_mean' requires \"defect_model\": \"clustered\""
        );
        let err = parse(r#"{"estimator": "stratified", "defect_model": "clustered"}"#).unwrap_err();
        assert!(err.message.contains("Bernoulli defect count"));
    }

    #[test]
    fn clustered_rejects_p_and_block_trials() {
        assert!(parse(r#"{"defect_model": "clustered", "p": 0.9}"#).is_err());
        assert!(parse(r#"{"defect_model": "clustered", "block_trials": 64}"#).is_err());
        assert!(parse(r#"{"defect_model": "clustered"}"#).is_ok());
    }

    #[test]
    fn tier_rules_hold() {
        assert!(parse(r#"{"tier": "raw", "scheme": "square-dtmb"}"#).is_err());
        assert!(parse(r#"{"tier": "raw", "estimator": "stratified"}"#).is_err());
        assert!(parse(r#"{"tier": "raw", "block_trials": 0}"#).is_err());
        assert!(parse(r#"{"tier": "raw", "design": "dtmb26"}"#).is_ok());
        assert!(parse(r#"{"tier": "operational"}"#).is_err());
        assert!(parse(r#"{"tier": "operational", "assay": "ivd-panel"}"#).is_ok());
        assert!(parse(r#"{"assay": "ivd-panel"}"#).is_err());
        let err = parse(r#"{"tier": "operational", "assay": "ivd-panel", "design": "dtmb16"}"#)
            .unwrap_err();
        assert_eq!(
            err.message,
            "'design' does not apply with 'assay': the assay workload \
             fixes the chip to the DTMB(2,6) IVD case-study layout"
        );
        assert!(parse(
            r#"{"tier": "operational", "assay": "ivd-panel",
                "estimator": "stratified", "block_trials": 64}"#
        )
        .is_err());
    }

    #[test]
    fn unknown_and_duplicate_fields_are_rejected() {
        assert!(parse(r#"{"triaals": 10}"#)
            .unwrap_err()
            .message
            .contains("unknown field"));
        assert!(parse(r#"{"seed": 1, "seed": 2}"#)
            .unwrap_err()
            .message
            .contains("duplicate field"));
    }

    #[test]
    fn service_ceilings_apply() {
        assert!(parse(r#"{"primaries": 1000000}"#).is_err());
        assert!(parse(r#"{"trials": 100000000}"#).is_err());
        assert!(parse(r#"{"block_trials": 100000}"#).is_err());
        assert!(parse(r#"{"scheme": "square-dtmb", "width": 5000}"#).is_err());
        assert!(parse(r#"{"trials": 0}"#).is_err());
        assert!(parse(r#"{"seed": -1}"#).is_err());
        assert!(parse(r#"{"p": 1.5}"#).is_err());
    }

    #[test]
    fn engine_key_separates_engines_not_requests() {
        let a = parse(r#"{"design": "dtmb26", "p": 0.9, "seed": 7}"#).unwrap();
        let b = parse(r#"{"design": "dtmb26", "p": 0.99, "trials": 50, "seed": 8}"#).unwrap();
        assert_eq!(a.engine_key(), b.engine_key());
        let c = parse(r#"{"design": "dtmb36"}"#).unwrap();
        assert_ne!(a.engine_key(), c.engine_key());
        let d = parse(r#"{"design": "dtmb26", "block_trials": 128}"#).unwrap();
        assert_ne!(a.engine_key(), d.engine_key());
        let e = parse(r#"{"tier": "operational", "assay": "ivd-panel"}"#).unwrap();
        assert!(e.engine_key().starts_with("assay:ivd-panel"));
    }

    #[test]
    fn engine_key_is_the_legacy_wire_format() {
        let r = parse(r#"{"design": "dtmb26", "primaries": 60}"#).unwrap();
        assert_eq!(
            r.engine_key(),
            "hex-dtmb:design=DTMB(2,6):primaries=60:block=auto"
        );
        let r = parse(
            r#"{"scheme": "spare-rows", "width": 8, "module_rows": 6,
                "spare_rows": 2, "block_trials": 0}"#,
        )
        .unwrap();
        assert_eq!(
            r.engine_key(),
            "spare-rows:width=8:module-rows=6:spare-rows=2:block=scalar"
        );
    }
}
