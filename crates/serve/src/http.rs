//! A deliberately small HTTP/1.1 reader/writer over [`std::net`].
//!
//! The workspace is offline (vendored stubs only), so the service speaks
//! the minimal subset of HTTP/1.1 the `dmfb soak` harness and a plain
//! `curl` need: request line + headers + `Content-Length` body, keep-alive
//! by default, no chunked encoding, no TLS. Every limit is explicit and
//! every violation maps to a clean 4xx instead of a panic — the reader is
//! the part of the daemon that faces untrusted bytes.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Maximum bytes accepted for the request line plus all headers.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Maximum request-body bytes (`Content-Length` above this is refused
/// with `413 Payload Too Large` before any allocation).
pub const MAX_BODY_BYTES: usize = 64 * 1024;

/// Per-connection read timeout. A client that stalls mid-request gets its
/// connection dropped instead of pinning a worker forever.
pub const READ_TIMEOUT: Duration = Duration::from_secs(5);

/// One parsed request.
#[derive(Clone, Debug)]
pub struct HttpRequest {
    /// Request method, upper-case as received (`GET`, `POST`, ...).
    pub method: String,
    /// Request target (path only; the service ignores query strings).
    pub target: String,
    /// Body bytes (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open afterwards.
    pub keep_alive: bool,
}

/// Why a request could not be read. [`HttpError::status`] maps each case
/// to the response the worker sends before closing or continuing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HttpError {
    /// The peer closed the connection cleanly before a request line
    /// (normal end of a keep-alive session — nothing to answer).
    Closed,
    /// The socket errored or timed out mid-request; nothing coherent to
    /// answer, the worker just drops the connection.
    Io(String),
    /// The bytes were not parseable HTTP/1.1 (`400`).
    Malformed(String),
    /// The head or declared body exceeded a limit (`431`/`413`).
    TooLarge(String),
}

impl HttpError {
    /// The status line to answer with, or `None` when the connection is
    /// beyond answering (closed or mid-request I/O failure).
    #[must_use]
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            HttpError::Closed | HttpError::Io(_) => None,
            HttpError::Malformed(_) => Some((400, "Bad Request")),
            HttpError::TooLarge(msg) => {
                if msg.contains("body") {
                    Some((413, "Payload Too Large"))
                } else {
                    Some((431, "Request Header Fields Too Large"))
                }
            }
        }
    }

    /// Human-readable detail for the error body.
    #[must_use]
    pub fn detail(&self) -> &str {
        match self {
            HttpError::Closed => "connection closed",
            HttpError::Io(m) | HttpError::Malformed(m) | HttpError::TooLarge(m) => m,
        }
    }
}

/// Reads one request from a buffered connection. The reader enforces
/// [`MAX_HEAD_BYTES`] and [`MAX_BODY_BYTES`] and never allocates more
/// than the declared (validated) body length.
pub fn read_request(reader: &mut BufReader<TcpStream>) -> Result<HttpRequest, HttpError> {
    let mut head_budget = MAX_HEAD_BYTES;
    let request_line = read_crlf_line(reader, &mut head_budget)?;
    if request_line.is_empty() {
        return Err(HttpError::Malformed("empty request line".into()));
    }
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty() && m.bytes().all(|b| b.is_ascii_uppercase()))
        .ok_or_else(|| HttpError::Malformed("missing method".into()))?
        .to_string();
    let target = parts
        .next()
        .filter(|t| t.starts_with('/'))
        .ok_or_else(|| HttpError::Malformed("missing or relative request target".into()))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing HTTP version".into()))?;
    if parts.next().is_some() || !matches!(version, "HTTP/1.1" | "HTTP/1.0") {
        return Err(HttpError::Malformed(format!(
            "unsupported request line tail '{version}'"
        )));
    }
    let mut content_length = 0usize;
    let mut keep_alive = version == "HTTP/1.1";
    loop {
        let line = read_crlf_line(reader, &mut head_budget)?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("header without ':': '{line}'")))?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                content_length = value
                    .parse()
                    .map_err(|_| HttpError::Malformed(format!("bad content-length '{value}'")))?;
                if content_length > MAX_BODY_BYTES {
                    return Err(HttpError::TooLarge(format!(
                        "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
                    )));
                }
            }
            "connection" => {
                keep_alive = !value.eq_ignore_ascii_case("close");
            }
            "transfer-encoding" => {
                return Err(HttpError::Malformed(
                    "transfer-encoding is not supported; send content-length".into(),
                ));
            }
            _ => {}
        }
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| HttpError::Io(format!("reading body: {e}")))?;
    Ok(HttpRequest {
        method,
        target,
        body,
        keep_alive,
    })
}

/// Reads one CRLF- (or bare-LF-) terminated line, charging the shared
/// head budget so a drip-fed header section cannot grow unboundedly.
fn read_crlf_line(
    reader: &mut BufReader<TcpStream>,
    budget: &mut usize,
) -> Result<String, HttpError> {
    let mut raw = Vec::new();
    let mut limited = reader.by_ref().take(*budget as u64 + 1);
    let n = limited
        .read_until(b'\n', &mut raw)
        .map_err(|e| HttpError::Io(format!("reading head: {e}")))?;
    if n == 0 {
        return Err(HttpError::Closed);
    }
    if raw.last() != Some(&b'\n') {
        return Err(if n > *budget {
            HttpError::TooLarge(format!(
                "request head exceeds the {MAX_HEAD_BYTES}-byte limit"
            ))
        } else {
            HttpError::Io("connection ended mid-header".into())
        });
    }
    *budget = budget.saturating_sub(n);
    raw.pop();
    if raw.last() == Some(&b'\r') {
        raw.pop();
    }
    String::from_utf8(raw).map_err(|_| HttpError::Malformed("non-UTF-8 header bytes".into()))
}

/// Writes one response. `extra_headers` are `(name, value)` pairs appended
/// verbatim after the standard ones; bodies are always sent with an exact
/// `Content-Length` (no chunking) so replies are byte-stable.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    extra_headers: &[(String, String)],
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {}\r\n",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// One response as seen by the tiny client below.
#[derive(Clone, Debug)]
pub struct HttpResponse {
    /// Numeric status code.
    pub status: u16,
    /// Lower-cased `(name, value)` header pairs.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// First value of a (lower-case) header name, if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A minimal blocking client connection used by the soak harness and the
/// integration tests. Keeps its connection open across requests so warm
/// latencies measure the service, not TCP handshakes.
pub struct HttpClient {
    reader: BufReader<TcpStream>,
}

impl HttpClient {
    /// Connects to `addr` (e.g. `127.0.0.1:8750`).
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(READ_TIMEOUT))?;
        stream.set_nodelay(true)?;
        Ok(HttpClient {
            reader: BufReader::new(stream),
        })
    }

    /// Sends one request and reads the full response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> std::io::Result<HttpResponse> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: dmfb\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        let stream = self.reader.get_mut();
        stream.write_all(head.as_bytes())?;
        stream.write_all(body)?;
        stream.flush()?;
        self.read_response()
    }

    /// Sends raw bytes (for malformed-request probes) and reads whatever
    /// response the server manages to produce.
    pub fn request_raw(&mut self, raw: &[u8]) -> std::io::Result<HttpResponse> {
        let stream = self.reader.get_mut();
        stream.write_all(raw)?;
        stream.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<HttpResponse> {
        let bad =
            |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string());
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        let status: u16 = line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("bad status line"))?;
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            if self.reader.read_line(&mut header)? == 0 {
                return Err(bad("connection closed in headers"));
            }
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim().to_string();
                if name == "content-length" {
                    content_length = value.parse().map_err(|_| bad("bad content-length"))?;
                }
                headers.push((name, value));
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok(HttpResponse {
            status,
            headers,
            body,
        })
    }
}
