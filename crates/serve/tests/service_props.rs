//! Property tests for the yield service's two load-bearing promises:
//!
//! 1. **Replies are pure functions of the request.** For any valid
//!    (tier, scheme, estimator, defect model, p, trials, seed), the
//!    reply body served from a warm cache is byte-identical to the one
//!    a cold server builds from scratch, and to the one a
//!    `"cache": "bypass"` request produces. Cache state may only ever
//!    change *when* a reply arrives, never *what* it says.
//!
//! 2. **The LRU cache is a deterministic, capacity-bounded function of
//!    the key sequence.** Against a naive reference model, every
//!    interleaved mix of hits, misses and bypasses must produce the
//!    same hit/miss outcomes, the same MRU ordering, and never more
//!    than `capacity` live entries.

use dmfb_serve::request::parse_yield_request;
use dmfb_serve::{CacheOutcome, LruCache, ServerState};
use proptest::prelude::*;

/// Renders one valid `/v1/yield` request body from independently drawn
/// raw parameters, folding combinations the validator rejects into
/// their nearest valid neighbour (e.g. `raw` tier is hex + naive +
/// Bernoulli only) so every generated body parses.
#[allow(clippy::too_many_arguments)]
fn request_body(
    scheme_sel: usize,
    tier_sel: usize,
    stratified: bool,
    clustered: bool,
    primaries: usize,
    dim: usize,
    p_mil: u32,
    trials: u64,
    seed: u64,
    bypass: bool,
) -> String {
    // Operational fixes the chip shape; raw is hex-only.
    let scheme_sel = if tier_sel == 2 { 0 } else { scheme_sel };
    let tier_sel = if scheme_sel != 0 && tier_sel == 0 {
        1
    } else {
        tier_sel
    };
    // Raw admits neither the stratified estimator nor clustered
    // defects; stratified + clustered is rejected everywhere.
    let stratified = stratified && tier_sel != 0;
    let clustered = clustered && tier_sel != 0 && !stratified;

    let mut fields = vec![format!(
        "\"tier\": \"{}\"",
        ["raw", "reconfigured", "operational"][tier_sel]
    )];
    match scheme_sel {
        0 if tier_sel == 2 => {
            fields.push("\"scheme\": \"hex-dtmb\"".into());
            fields.push("\"assay\": \"ivd-panel\"".into());
        }
        0 => {
            fields.push("\"scheme\": \"hex-dtmb\"".into());
            fields.push("\"design\": \"dtmb26\"".into());
            fields.push(format!("\"primaries\": {primaries}"));
        }
        1 => {
            fields.push("\"scheme\": \"square-dtmb\"".into());
            fields.push("\"pattern\": \"perfect-code\"".into());
            fields.push(format!("\"width\": {dim}"));
            fields.push(format!("\"height\": {dim}"));
        }
        _ => {
            fields.push("\"scheme\": \"spare-rows\"".into());
            fields.push(format!("\"width\": {dim}"));
            fields.push(format!("\"module_rows\": {}", dim.max(2)));
            fields.push("\"spare_rows\": 1".into());
        }
    }
    if stratified {
        fields.push("\"estimator\": \"stratified\"".into());
        fields.push("\"pilot\": 8".into());
    }
    if clustered {
        fields.push("\"defect_model\": \"clustered\"".into());
        fields.push("\"cluster_radius\": 1".into());
    } else {
        // Clustered requests fix the intensity via the cluster
        // parameters; 'p' only applies under Bernoulli.
        fields.push(format!("\"p\": 0.{:03}", 900 + p_mil % 100));
    }
    fields.push(format!("\"trials\": {trials}"));
    fields.push(format!("\"seed\": {seed}"));
    if bypass {
        fields.push("\"cache\": \"bypass\"".into());
    }
    format!("{{{}}}", fields.join(", "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Warm-cache replies, cold-build replies and bypass replies are
    /// byte-identical for the same request, and cache outcomes follow
    /// the miss-then-hit protocol.
    #[test]
    fn warm_cold_and_bypass_replies_are_byte_identical(
        scheme_sel in 0usize..3,
        tier_sel in 0usize..3,
        stratified_sel in 0u8..2,
        clustered_sel in 0u8..2,
        primaries in 16usize..96,
        dim in 4usize..10,
        p_mil in 0u32..1000,
        trials in 8u64..40,
        seed in 0u64..(1 << 53),
    ) {
        let (stratified, clustered) = (stratified_sel == 1, clustered_sel == 1);
        let body = request_body(
            scheme_sel, tier_sel, stratified, clustered,
            primaries, dim, p_mil, trials, seed, false,
        );
        let bypass_body = request_body(
            scheme_sel, tier_sel, stratified, clustered,
            primaries, dim, p_mil, trials, seed, true,
        );

        let state = ServerState::new(4, 1);
        let cold = state.handle_yield(body.as_bytes());
        prop_assert_eq!(cold.status, 200, "cold reply: {}", cold.body);
        prop_assert_eq!(cold.cache, Some(CacheOutcome::Miss));

        let warm = state.handle_yield(body.as_bytes());
        prop_assert_eq!(warm.status, 200);
        prop_assert_eq!(warm.cache, Some(CacheOutcome::Hit));
        prop_assert_eq!(&warm.body, &cold.body, "warm reply diverged from cold");

        // A second, freshly built server must agree byte-for-byte —
        // replies depend on the request alone, not on server history.
        let fresh = ServerState::new(4, 1).handle_yield(body.as_bytes());
        prop_assert_eq!(&fresh.body, &cold.body, "fresh rebuild diverged");

        let bypassed = state.handle_yield(bypass_body.as_bytes());
        prop_assert_eq!(bypassed.status, 200);
        prop_assert_eq!(bypassed.cache, Some(CacheOutcome::Bypass));
        prop_assert_eq!(&bypassed.body, &cold.body, "bypass reply diverged");
    }

    /// The engine cache is keyed by the shared `SchemeSpec`-derived
    /// descriptor and nothing else: two valid requests parse to equal
    /// `EngineParams` iff the second is served from the first one's
    /// cached engine.
    #[test]
    fn equal_engine_params_iff_shared_cache_entry(
        a_scheme in 0usize..3,
        a_tier in 0usize..3,
        a_primaries in 16usize..96,
        a_dim in 4usize..10,
        b_scheme in 0usize..3,
        b_tier in 0usize..3,
        b_primaries in 16usize..96,
        b_dim in 4usize..10,
        trials in 8u64..24,
        seed in 0u64..(1 << 53),
    ) {
        let body_a = request_body(
            a_scheme, a_tier, false, false, a_primaries, a_dim, 0, trials, seed, false,
        );
        // The second request varies the per-request knobs too (p via
        // p_mil, seed), which must not affect engine identity.
        let body_b = request_body(
            b_scheme, b_tier, false, false, b_primaries, b_dim, 7, trials, seed ^ 1, false,
        );
        let spec_a = parse_yield_request(body_a.as_bytes()).unwrap().engine_params();
        let spec_b = parse_yield_request(body_b.as_bytes()).unwrap().engine_params();

        let state = ServerState::new(4, 1);
        let first = state.handle_yield(body_a.as_bytes());
        prop_assert_eq!(first.status, 200, "reply: {}", first.body);
        prop_assert_eq!(first.cache, Some(CacheOutcome::Miss));
        let second = state.handle_yield(body_b.as_bytes());
        prop_assert_eq!(second.status, 200, "reply: {}", second.body);
        let expected = if spec_a == spec_b {
            CacheOutcome::Hit
        } else {
            CacheOutcome::Miss
        };
        prop_assert_eq!(second.cache, Some(expected), "specs: {:?} vs {:?}", spec_a, spec_b);
    }

    /// The engine-thread count is a throughput knob, not a result knob:
    /// single-threaded and multi-threaded states serve identical bytes.
    #[test]
    fn thread_count_never_changes_reply_bytes(
        scheme_sel in 0usize..3,
        stratified_sel in 0u8..2,
        primaries in 16usize..96,
        dim in 4usize..10,
        trials in 8u64..40,
        seed in 0u64..(1 << 53),
    ) {
        let body = request_body(
            scheme_sel, 1, stratified_sel == 1, false, primaries, dim, 0, trials, seed, false,
        );
        let single = ServerState::new(1, 1).handle_yield(body.as_bytes());
        let quad = ServerState::new(1, 4).handle_yield(body.as_bytes());
        prop_assert_eq!(single.status, 200, "reply: {}", single.body);
        prop_assert_eq!(single.body, quad.body, "threads changed reply bytes");
    }
}

/// Applies one lookup to a naive MRU-list model of the cache and
/// returns whether it was a hit.
fn model_lookup(model: &mut Vec<String>, key: &str, capacity: usize) -> bool {
    if let Some(pos) = model.iter().position(|k| k == key) {
        let hit = model.remove(pos);
        model.insert(0, hit);
        true
    } else {
        model.insert(0, key.to_string());
        model.truncate(capacity);
        false
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The LRU cache tracks a reference MRU-list model exactly under
    /// interleaved hits, misses and bypasses: same outcomes, same
    /// eviction order, never over capacity.
    #[test]
    fn lru_matches_reference_model(
        capacity in 0usize..6,
        ops in proptest::collection::vec((0usize..6, 0u8..2), 0..48),
    ) {
        let mut cache: LruCache<String> = LruCache::new(capacity);
        let mut model: Vec<String> = Vec::new();
        let (mut hits, mut misses, mut bypasses) = (0u64, 0u64, 0u64);

        for (key_idx, bypass_sel) in ops {
            let bypass = bypass_sel == 1;
            let key = format!("k{key_idx}");
            if bypass {
                cache.note_bypass();
                bypasses += 1;
            } else {
                let expect_hit = model_lookup(&mut model, &key, capacity);
                let (value, outcome) =
                    cache.get_or_insert_with(&key, || key.clone());
                prop_assert_eq!(&*value, &key, "cache returned the wrong value");
                let expected = if expect_hit {
                    hits += 1;
                    CacheOutcome::Hit
                } else {
                    misses += 1;
                    CacheOutcome::Miss
                };
                prop_assert_eq!(outcome, expected, "outcome diverged on '{}'", key);
            }
            prop_assert!(cache.len() <= capacity, "cache exceeded capacity");
            prop_assert_eq!(cache.keys(), model.clone(), "MRU order diverged");
        }

        let stats = cache.stats();
        prop_assert_eq!(stats.hits, hits);
        prop_assert_eq!(stats.misses, misses);
        prop_assert_eq!(stats.bypasses, bypasses);
        // Every miss either grew the cache or evicted the LRU entry;
        // at capacity zero nothing is inserted, so nothing is evicted.
        let expected_evictions = if capacity == 0 {
            0
        } else {
            misses - cache.len() as u64
        };
        prop_assert_eq!(stats.evictions, expected_evictions);
    }
}
