//! End-to-end tests over real TCP: a `Server` bound to an ephemeral
//! port, driven by the crate's own `HttpClient`. These pin the wire
//! behaviour the soak harness and CI job rely on — worker-count
//! invariance, 4xx (never a hangup, never a panic) on malformed input,
//! and a graceful shutdown that actually joins the acceptor.

use std::thread::JoinHandle;

use dmfb_serve::http::{HttpClient, HttpResponse};
use dmfb_serve::{Server, ServerConfig};

/// Starts a server on an ephemeral port and returns its address plus
/// the handle to join after `/v1/shutdown`.
fn text(reply: &HttpResponse) -> String {
    String::from_utf8_lossy(&reply.body).into_owned()
}

fn start(workers: usize) -> (String, JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        threads: 1,
        cache_capacity: 8,
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn shut_down(addr: &str, handle: JoinHandle<std::io::Result<()>>) {
    let mut client = HttpClient::connect(addr).expect("connect for shutdown");
    let reply = client
        .request("POST", "/v1/shutdown", b"")
        .expect("shutdown request");
    assert_eq!(reply.status, 200);
    assert!(
        text(&reply).contains("shutting-down"),
        "body: {}",
        text(&reply)
    );
    handle
        .join()
        .expect("server thread panicked")
        .expect("server run() errored");
}

const DTMB_BODY: &[u8] =
    br#"{"scheme": "hex-dtmb", "design": "dtmb26", "primaries": 60, "trials": 24, "seed": 7}"#;

#[test]
fn replies_are_identical_across_worker_counts_and_requests() {
    let (addr_a, handle_a) = start(1);
    let (addr_b, handle_b) = start(4);

    let mut client_a = HttpClient::connect(&addr_a).expect("connect A");
    let mut client_b = HttpClient::connect(&addr_b).expect("connect B");

    let first = client_a
        .request("POST", "/v1/yield", DTMB_BODY)
        .expect("first request");
    assert_eq!(first.status, 200, "body: {}", text(&first));
    assert_eq!(first.header("x-dmfb-cache"), Some("miss"));

    // Same request again on the same connection: cache hit, same bytes.
    let warm = client_a
        .request("POST", "/v1/yield", DTMB_BODY)
        .expect("warm request");
    assert_eq!(warm.header("x-dmfb-cache"), Some("hit"));
    assert_eq!(warm.body, first.body);

    // Same request against a 4-worker server: byte-identical body.
    let other = client_b
        .request("POST", "/v1/yield", DTMB_BODY)
        .expect("request against 4 workers");
    assert_eq!(other.status, 200);
    assert_eq!(other.body, first.body, "worker count changed reply bytes");

    // Free the workers before shutting down: a single-worker server
    // serves one keep-alive connection at a time.
    drop(client_a);
    drop(client_b);
    shut_down(&addr_a, handle_a);
    shut_down(&addr_b, handle_b);
}

#[test]
fn malformed_requests_get_4xx_and_the_server_keeps_serving() {
    let (addr, handle) = start(2);

    // Invalid JSON → 400 on the same keep-alive connection.
    let mut client = HttpClient::connect(&addr).expect("connect");
    let bad_json = client
        .request("POST", "/v1/yield", b"{not json")
        .expect("bad JSON request");
    assert_eq!(bad_json.status, 400);
    assert!(
        text(&bad_json).contains("error"),
        "body: {}",
        text(&bad_json)
    );

    // Unknown field → 400; foreign subparam → 400.
    let unknown = client
        .request("POST", "/v1/yield", br#"{"bogus": 1}"#)
        .expect("unknown-field request");
    assert_eq!(unknown.status, 400);
    let foreign = client
        .request(
            "POST",
            "/v1/yield",
            br#"{"scheme": "spare-rows", "design": "dtmb26"}"#,
        )
        .expect("foreign-subparam request");
    assert_eq!(foreign.status, 400);

    // Wrong method and unknown path.
    let not_allowed = client
        .request("GET", "/v1/yield", b"")
        .expect("GET /v1/yield");
    assert_eq!(not_allowed.status, 405);
    assert_eq!(not_allowed.header("allow"), Some("POST"));
    let not_found = client.request("GET", "/v1/nope", b"").expect("404 path");
    assert_eq!(not_found.status, 404);

    // A garbage request line gets a 400 before the connection closes.
    let mut raw = HttpClient::connect(&addr).expect("connect raw");
    let garbled = raw
        .request_raw(b"BLORP /v1/yield HTTP/9.9\r\n\r\n")
        .expect("garbled request line");
    assert_eq!(garbled.status, 400);

    // A body over the 64 KiB cap is refused with 413.
    let mut big = HttpClient::connect(&addr).expect("connect big");
    let oversized = big
        .request_raw(b"POST /v1/yield HTTP/1.1\r\ncontent-length: 1048576\r\n\r\n")
        .expect("oversized announcement");
    assert_eq!(oversized.status, 413);

    // After all of the above the server still answers cleanly.
    let mut again = HttpClient::connect(&addr).expect("reconnect");
    let health = again.request("GET", "/v1/health", b"").expect("health");
    assert_eq!(health.status, 200);
    let good = again
        .request("POST", "/v1/yield", DTMB_BODY)
        .expect("valid request after abuse");
    assert_eq!(good.status, 200);

    drop(client);
    drop(again);
    shut_down(&addr, handle);
}

#[test]
fn shutdown_joins_even_with_idle_keep_alive_connections() {
    let (addr, handle) = start(2);

    // Leave a keep-alive connection idle; shutdown must not wait on it
    // past the read timeout.
    let mut idle = HttpClient::connect(&addr).expect("idle connection");
    let ok = idle.request("GET", "/v1/health", b"").expect("health");
    assert_eq!(ok.status, 200);

    shut_down(&addr, handle);
}
