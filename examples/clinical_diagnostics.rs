//! Clinical scenario: multiplexed in-vitro diagnostics on a defective chip.
//!
//! A DTMB(2,6) diagnostics biochip (252 primary + 91 spare cells, paper
//! Figure 12) comes off the line with manufacturing defects. We test it,
//! reconfigure it, and then run the full four-assay clinical panel —
//! glucose and lactate on two patient samples — through droplet transport,
//! mixing, Trinder-reaction kinetics, and noisy photometric detection.
//!
//! ```text
//! cargo run -p dmfb-examples --bin clinical_diagnostics [faults] [seed]
//! ```

use dmfb_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut args = std::env::args().skip(1);
    let faults: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(12);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2005);

    let chip = ivd_dtmb26_chip();
    println!(
        "chip: {} primaries ({} assay cells) + {} spares",
        chip.array.primary_count(),
        chip.assay_cells.len(),
        chip.array.spare_count()
    );

    // Manufacturing defects.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut defects = ExactCount::new(faults).inject(chip.array.region(), &mut rng);
    defects.close_shorts();
    let on_assay = chip
        .assay_cells
        .iter()
        .filter(|c| defects.is_faulty(*c))
        .count();
    println!(
        "defects: {} faulty cell(s), {} of them on assay cells",
        defects.fault_count(),
        on_assay
    );

    // Droplet-trace testing localises the faults.
    let diagnosis = diagnose(chip.array.region(), &defects, MeasurementModel::default());
    println!(
        "test: {} droplet(s), {} electrode actuations, {} fault(s) localised",
        diagnosis.droplets_used,
        diagnosis.total_moves,
        diagnosis.detected.fault_count()
    );

    // Local reconfiguration (used-cells policy).
    let policy = used_cells_policy(&chip);
    let plan = match attempt_reconfiguration(&chip.array, &diagnosis.detected, &policy) {
        Ok(plan) => {
            println!(
                "reconfiguration: OK, {} assay cell(s) replaced by spares",
                plan.len()
            );
            plan
        }
        Err(failure) => {
            println!("reconfiguration failed — chip discarded: {failure}");
            return;
        }
    };

    // Run the clinical panel on the repaired chip.
    let exec = Executor::new(chip, defects, Some(plan));
    match exec.run(&MultiplexedIvd::standard_panel(), &mut rng) {
        Ok(outcomes) => {
            println!("\nassay       sample    true mM  measured mM  error");
            for o in &outcomes {
                println!(
                    "{:<10}  {:<8}  {:>7.3}  {:>11.3}  {:>5.1}%",
                    o.request.analyte.to_string(),
                    o.request.sample_port,
                    o.true_concentration_mm,
                    o.measured_concentration_mm,
                    100.0 * o.relative_error()
                );
            }
            let makespan = outcomes
                .iter()
                .map(|o| o.completion_time_s)
                .fold(0.0f64, f64::max);
            println!("\npanel complete in {makespan:.1} s of chip time");
        }
        Err(e) => println!("protocol failed: {e}"),
    }
}
