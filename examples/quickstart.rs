//! Quickstart: design a defect-tolerant biochip, estimate its yield, and
//! inspect one reconfiguration.
//!
//! ```text
//! cargo run -p dmfb-examples --bin quickstart
//! ```

use dmfb_core::prelude::*;

fn main() {
    // 1. A DTMB(2,6) biochip with 100 primary cells: every primary cell is
    //    adjacent to two interstitial spares.
    let chip = Biochip::dtmb(DtmbKind::Dtmb26A, 100);
    println!(
        "array: {} primaries + {} spares (redundancy ratio {:.3})",
        chip.array().primary_count(),
        chip.array().spare_count(),
        chip.array().redundancy_ratio()
    );

    // 2. Manufacturing yield at 95% per-cell survival, 10 000 Monte-Carlo
    //    trials, with and without local reconfiguration.
    let report = chip.yield_report(0.95, 10_000, 42);
    println!("survival p = {:.2}", report.survival_p);
    println!("  raw yield (no reconfiguration): {}", report.raw_yield);
    println!(
        "  with local reconfiguration:     {}",
        report.reconfigured_yield
    );
    println!(
        "  effective yield (area-scaled):  {:.4}",
        report.effective_yield
    );

    // 3. One chip instance end to end: inject defects, test with droplet
    //    traces, reconfigure from what the test found.
    let outcome = chip.simulate_one(0.95, 7);
    println!(
        "one chip: {} true fault(s), {} detected with {} test droplet(s) / {} moves",
        outcome.true_defects.fault_count(),
        outcome.detected.fault_count(),
        outcome.test_droplets,
        outcome.test_moves,
    );
    match &outcome.plan {
        Ok(plan) => {
            println!("  ships! {} replacement(s):", plan.len());
            for (faulty, spare) in plan.iter() {
                println!("    {faulty} -> spare {spare}");
            }
        }
        Err(failure) => println!("  discarded: {failure}"),
    }
}
