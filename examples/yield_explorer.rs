//! Design-space exploration: which redundancy level should a biochip use
//! for a given manufacturing process?
//!
//! Sweeps the cell survival probability and reports, per process corner,
//! the design with the best *effective* yield — reproducing the paper's
//! Figure 10 guidance ("higher redundancy for small p, lower redundancy
//! for high p") as an actionable tool.
//!
//! ```text
//! cargo run -p dmfb-examples --bin yield_explorer [primaries] [trials]
//! ```

use dmfb_core::prelude::*;
use dmfb_examples::bar;

fn main() {
    let mut args = std::env::args().skip(1);
    let primaries: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(100);
    let trials: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(3_000);

    println!("effective-yield explorer: n = {primaries} primaries, {trials} trials/point\n");

    let designs: Vec<(DtmbKind, MonteCarloYield)> = DtmbKind::TABLE1
        .iter()
        .map(|&k| {
            (
                k,
                MonteCarloYield::new(
                    k.with_primary_count(primaries),
                    ReconfigPolicy::AllPrimaries,
                ),
            )
        })
        .collect();

    println!("p      best design   EY      profile (EY per design, Table-1 order)");
    for step in 0..=10 {
        let p = 0.80 + 0.02 * step as f64;
        let mut best: Option<(DtmbKind, f64)> = None;
        let mut cells = Vec::new();
        for (i, (kind, est)) in designs.iter().enumerate() {
            let y = est
                .estimate_survival(p, trials, 0xEE + (step * 7 + i) as u64)
                .point();
            let ey = y * est.array().primary_count() as f64 / est.array().total_cells() as f64;
            cells.push(format!("{ey:.3}"));
            if best.is_none_or(|(_, b)| ey > b) {
                best = Some((*kind, ey));
            }
        }
        let (kind, ey) = best.expect("non-empty designs");
        println!(
            "{p:.2}   {:<12}  {ey:.3}   {}   [{}]",
            kind.to_string(),
            bar(ey, 20),
            cells.join(", ")
        );
    }
    println!(
        "\nReading: at low survival probabilities the EY winner is the highly \
         redundant DTMB(4,4); as the process matures the lean designs take over \
         (paper Figure 10)."
    );
}
