//! Shared helpers for the example binaries.
//!
//! The real content of this package is its example binaries (`quickstart`,
//! and the domain scenarios); this library only hosts small formatting
//! utilities they share.

/// Formats a probability as a fixed-width percentage for table output.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:6.2}%", 100.0 * x)
}

/// Renders a simple horizontal bar for terminal "plots".
#[must_use]
pub fn bar(x: f64, width: usize) -> String {
    let n = (x.clamp(0.0, 1.0) * width as f64).round() as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < n { '#' } else { '.' });
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.5), " 50.00%");
    }

    #[test]
    fn bar_clamps() {
        assert_eq!(bar(2.0, 4), "####");
        assert_eq!(bar(-1.0, 4), "....");
        assert_eq!(bar(0.5, 4), "##..");
    }
}
