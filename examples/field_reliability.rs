//! Service-life reliability: how long does a deployed biochip keep
//! working when cells wear out in the field?
//!
//! A DTMB(2,6) diagnostics chip ships after manufacturing test and
//! reconfiguration. In service, electrodes fail with an MTBF; at every
//! maintenance window the chip re-tests itself and re-runs local
//! reconfiguration over *all* accumulated faults. The chip retires when
//! the assay cells can no longer be covered. This example estimates the
//! survival curve over service hours — redundancy bought at fab time keeps
//! paying during the product's life.
//!
//! ```text
//! cargo run -p dmfb-examples --bin field_reliability [mtbf_hours] [chips]
//! ```

use dmfb_core::defects::operational::MtbfModel;
use dmfb_core::prelude::*;
use dmfb_examples::{bar, pct};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut args = std::env::args().skip(1);
    let mtbf: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2_000.0);
    let chips: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(400);

    let chip = ivd_dtmb26_chip();
    let policy = used_cells_policy(&chip);
    let model = MtbfModel::new(mtbf, 1.0);
    println!(
        "chip: {} primaries + {} spares; per-cell MTBF {mtbf} h; fleet of {chips}\n",
        chip.array.primary_count(),
        chip.array.spare_count()
    );

    println!("service hours   fleet alive   (re-reconfigured at each window)");
    let horizons = [50.0, 100.0, 200.0, 400.0, 800.0, 1_600.0];
    for (hi, &horizon) in horizons.iter().enumerate() {
        let mut alive = 0u64;
        for c in 0..chips {
            let mut rng = StdRng::seed_from_u64(0x11FE + c * 7919 + hi as u64);
            let cells: Vec<HexCoord> = model
                .sample_failures(chip.array.region(), horizon, &mut rng)
                .into_iter()
                .map(|f| f.cell)
                .collect();
            let defects = DefectMap::from_cells(cells);
            if attempt_reconfiguration(&chip.array, &defects, &policy).is_ok() {
                alive += 1;
            }
        }
        let frac = alive as f64 / chips as f64;
        println!("{horizon:>12.0}   {}   {}", pct(frac), bar(frac, 30));
    }
    println!(
        "\nexpected failures at the longest horizon: {:.1} cells of {}",
        model.expected_failures(chip.array.region(), *horizons.last().expect("non-empty")),
        chip.array.total_cells()
    );
    println!(
        "Reading: the interstitial spares that rescued manufacturing yield \
         also extend field life — the fleet survives until the accumulated \
         fault population overwhelms local coverage."
    );
}
