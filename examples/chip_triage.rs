//! Production-line triage: test every fabricated chip, reconfigure the
//! repairable ones, and report the shipped yield and test cost per design.
//!
//! This stitches the whole pipeline together the way a fab would use it:
//! droplet-trace testing produces the fault map (not oracle knowledge!),
//! local reconfiguration decides ship/discard, and the line statistics
//! show the yield uplift each DTMB design buys at the observed process
//! corner.
//!
//! ```text
//! cargo run -p dmfb-examples --bin chip_triage [survival_p] [batch]
//! ```

use dmfb_core::prelude::*;
use dmfb_examples::pct;

fn main() {
    let mut args = std::env::args().skip(1);
    let p: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.95);
    let batch: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(300);

    println!("triage line: p = {p}, batch = {batch} chips per design\n");
    println!("design       shipped   repaired  avg test droplets  avg test moves");

    let mut candidates: Vec<Option<DtmbKind>> = vec![None];
    candidates.extend(DtmbKind::TABLE1.into_iter().map(Some));

    for kind in candidates {
        let chip = match kind {
            Some(k) => Biochip::dtmb(k, 108),
            None => Biochip::without_redundancy(108),
        };
        let mut shipped = 0u64;
        let mut repaired = 0u64;
        let mut droplets = 0u64;
        let mut moves = 0u64;
        for i in 0..batch {
            let outcome = chip.simulate_one(p, 0xC0FFEE + i);
            droplets += outcome.test_droplets as u64;
            moves += outcome.test_moves as u64;
            if outcome.ships() {
                shipped += 1;
                if !outcome.detected.is_fault_free() {
                    repaired += 1;
                }
            }
        }
        println!(
            "{:<11}  {}   {}   {:>17.1}  {:>14.1}",
            kind.map_or("none".to_string(), |k| k.to_string()),
            pct(shipped as f64 / batch as f64),
            pct(repaired as f64 / batch as f64),
            droplets as f64 / batch as f64,
            moves as f64 / batch as f64,
        );
    }
    println!(
        "\nReading: every repaired chip is one that a redundancy-free design \
         would have discarded; the test cost (droplets, actuations) is the \
         price of locating the faults first."
    );
}
