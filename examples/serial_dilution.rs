//! On-chip serial dilution: bringing an out-of-range sample back into the
//! assay's linear range with merge-mix-split ladders.
//!
//! ```text
//! cargo run -p dmfb-examples --bin serial_dilution [raw_mM]
//! ```

use dmfb_core::bioassay::dilution::{diluted_concentration, DilutionPlan};
use dmfb_core::bioassay::droplet::{Droplet, DropletId, Mixture};
use dmfb_core::bioassay::kinetics::{
    absorbance_545nm, CalibrationCurve, DROPLET_PATH_CM, QUINONEIMINE_EPSILON,
};
use dmfb_core::prelude::*;

fn main() {
    let raw: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(45.0);

    let analyte = Analyte::Glucose;
    let standards = analyte.calibration_standards_mm();
    let max_standard = *standards.last().expect("standards exist");
    println!("sample: {raw:.1} mM glucose; calibration range tops out at {max_standard:.1} mM");

    let plan = if raw > max_standard {
        DilutionPlan::for_target(2.0 * raw / max_standard)
    } else {
        DilutionPlan::for_target(1.0)
    };
    println!(
        "plan: {} merge-mix-split stage(s) -> 1:{:.0} dilution, {} buffer droplet(s)",
        plan.stages,
        plan.achieved_dilution(),
        plan.buffer_droplets()
    );

    // Execute the ladder on an actual droplet.
    let sample = Droplet::new(
        DropletId(0),
        HexCoord::new(0, 0),
        50.0,
        Mixture::single("glucose", raw),
    );
    let mut next = 0u32;
    let (diluted, waste) = plan.execute(sample, &Mixture::new(), || {
        next += 1;
        DropletId(next)
    });
    println!(
        "diluted droplet: {:.2} mM in {:.0} nL ({} waste droplet(s))",
        diluted.contents.concentration("glucose"),
        diluted.volume_nl,
        waste.len()
    );

    // Measure the diluted droplet and undo the dilution.
    let kinetics = analyte.kinetics();
    let curve = CalibrationCurve::build(&kinetics, &standards, 60.0);
    let state = kinetics.integrate(diluted_concentration(raw, &plan), 60.0, 0.05);
    let absorbance = absorbance_545nm(state.quinoneimine_mm, DROPLET_PATH_CM, QUINONEIMINE_EPSILON);
    let measured = curve.concentration(absorbance) * plan.achieved_dilution();
    println!(
        "measured: A545 = {absorbance:.3} -> {measured:.1} mM after un-diluting \
         ({:.1}% error)",
        100.0 * (measured - raw).abs() / raw
    );
}
