//! End-to-end pipeline tests across crates: injection → droplet-trace
//! testing → reconfiguration → assay execution.

use dmfb_core::prelude::*;
use dmfb_integration_tests::TEST_SEEDS;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The triage pipeline is sound for every design: detected faults are true
/// faults, and a shipped chip's plan replaces every detected in-scope
/// faulty primary with a distinct adjacent fault-free spare.
#[test]
fn triage_pipeline_sound_for_all_designs() {
    for kind in DtmbKind::ALL {
        let chip = Biochip::dtmb(kind, 80);
        for (i, &seed) in TEST_SEEDS.iter().enumerate() {
            let outcome = chip.simulate_one(0.93, seed + i as u64);
            for c in outcome.detected.faulty_cells() {
                assert!(outcome.true_defects.is_faulty(c), "{kind}: ghost fault {c}");
            }
            if let Ok(plan) = &outcome.plan {
                let mut used = std::collections::BTreeSet::new();
                for (faulty, spare) in plan.iter() {
                    assert!(faulty.is_adjacent(spare), "{kind}");
                    assert!(chip.array().is_spare(spare), "{kind}");
                    assert!(!outcome.detected.is_faulty(spare), "{kind}");
                    assert!(used.insert(spare), "{kind}: spare reused");
                }
            }
        }
    }
}

/// Diagnosed-fault reconfiguration agrees with oracle-fault
/// reconfiguration whenever testing found everything (connected arrays,
/// catastrophic faults only).
#[test]
fn testing_matches_oracle_for_catastrophic_faults() {
    let array = DtmbKind::Dtmb36.with_primary_count(60);
    let mut rng = StdRng::seed_from_u64(TEST_SEEDS[2]);
    for m in [1usize, 3, 6] {
        let defects = ExactCount::new(m).inject(array.region(), &mut rng);
        let diagnosis = diagnose(array.region(), &defects, MeasurementModel::default());
        if diagnosis.unreachable.is_empty() {
            assert_eq!(
                diagnosis.detected.fault_count(),
                defects.fault_count(),
                "all catastrophic faults found"
            );
            let via_test =
                attempt_reconfiguration(&array, &diagnosis.detected, &ReconfigPolicy::AllPrimaries)
                    .is_ok();
            let via_oracle =
                attempt_reconfiguration(&array, &defects, &ReconfigPolicy::AllPrimaries).is_ok();
            assert_eq!(via_test, via_oracle);
        }
    }
}

/// A reconfigured case-study chip still runs its clinical panel, and the
/// measured concentrations stay clinically usable.
#[test]
fn reconfigured_chip_completes_clinical_panel() {
    let chip = ivd_dtmb26_chip();
    let mut rng = StdRng::seed_from_u64(TEST_SEEDS[3]);
    let mut defects = ExactCount::new(15).inject(chip.array.region(), &mut rng);
    defects.close_shorts();
    let policy = used_cells_policy(&chip);
    let Ok(plan) = attempt_reconfiguration(&chip.array, &defects, &policy) else {
        // Unlucky seed: the chip is genuinely dead. The yield tests cover
        // rates; this test only cares about the success path.
        return;
    };
    let exec = Executor::new(chip, defects, Some(plan));
    let outcomes = exec
        .run(&MultiplexedIvd::standard_panel(), &mut rng)
        .expect("panel must run on a reconfigured chip");
    assert_eq!(outcomes.len(), 4);
    for o in &outcomes {
        assert!(
            o.relative_error() < 0.30,
            "{} measured {} vs true {}",
            o.request.analyte,
            o.measured_concentration_mm,
            o.true_concentration_mm
        );
    }
}

/// The same seeds produce the same pipeline outcomes (full determinism
/// across the crate stack).
#[test]
fn pipeline_is_deterministic() {
    let chip = Biochip::dtmb(DtmbKind::Dtmb26B, 70);
    let a = chip.simulate_one(0.9, 999);
    let b = chip.simulate_one(0.9, 999);
    assert_eq!(a.true_defects, b.true_defects);
    assert_eq!(a.detected, b.detected);
    assert_eq!(a.test_droplets, b.test_droplets);
    assert_eq!(a.ships(), b.ships());
}

/// Clustered defects (violating the paper's independence assumption) hurt
/// yield more than i.i.d. defects with the same expected count — the
/// ablation DESIGN.md promises.
#[test]
fn clustered_defects_are_worse_than_iid() {
    let est = MonteCarloYield::new(
        DtmbKind::Dtmb26A.with_primary_count(120),
        ReconfigPolicy::AllPrimaries,
    );
    let total_cells = est.array().total_cells() as f64;
    let clustered = ClusteredSpot::new(2.0, 1, 0.6);
    let expected_failures = clustered.expected_failures();
    let q = expected_failures / total_cells;
    let iid = est.estimate_survival(1.0 - q, 4_000, TEST_SEEDS[0]).point();
    let spot = est.estimate_with(&clustered, 4_000, TEST_SEEDS[0]).point();
    assert!(
        spot < iid + 0.02,
        "clustered {spot} should not beat iid {iid}"
    );
}
