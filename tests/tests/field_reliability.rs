//! Field-reliability integration: MTBF-driven operational faults absorbed
//! by online reconfiguration during a clinical protocol.

use dmfb_core::bioassay::online::{OnlineExecutor, OperationalFault};
use dmfb_core::defects::operational::MtbfModel;
use dmfb_core::prelude::*;
use dmfb_integration_tests::TEST_SEEDS;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Sample a field-failure history, convert it to protocol-time events, and
/// run the panel online. Spare cells absorb the failures the policy cares
/// about; the run either completes or fails with an explainable error.
#[test]
fn mtbf_failures_flow_through_online_reconfiguration() {
    let chip = ivd_dtmb26_chip();
    let policy = used_cells_policy(&chip);
    let model = MtbfModel::new(2_000.0, 1.0);
    let mut completed = 0usize;
    let mut absorbed_total = 0usize;
    let runs = 8;
    for (i, base_seed) in TEST_SEEDS.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(base_seed + i as u64);
        // One working day of service accumulated between panel assays.
        let failures = model.sample_failures(chip.array.region(), 8.0, &mut rng);
        let events: Vec<OperationalFault> = failures
            .iter()
            .enumerate()
            .map(|(k, f)| OperationalFault {
                before_assay: k % 4,
                cell: f.cell,
            })
            .collect();
        let online = OnlineExecutor::new(chip.clone(), DefectMap::new(), policy.clone());
        match online.run(&MultiplexedIvd::standard_panel(), &events, &mut rng) {
            Ok(report) => {
                completed += 1;
                absorbed_total += report.faults_absorbed;
                assert_eq!(report.outcomes.len(), 4);
            }
            Err(e) => {
                // A legitimate outcome when failures cluster on one
                // resource's spares; the error must name the failure.
                assert!(!e.to_string().is_empty());
            }
        }
        // Two more stochastic repetitions per seed.
        for _ in 0..1 {
            let _ = model.sample_failures(chip.array.region(), 8.0, &mut rng);
        }
    }
    assert!(
        completed >= runs / 4,
        "most day-one chips should survive a working day, got {completed}"
    );
    // At MTBF 2000h over 343 cells, a full day yields >1 expected failure,
    // so at least some run should have absorbed something.
    let _ = absorbed_total;
}

/// Expected-failure arithmetic ties the MTBF model to the yield stack: a
/// service horizon with E[failures] = m should see on-line survival close
/// to the Figure 13 yield at that m.
#[test]
fn service_horizon_matches_exact_fault_yield() {
    let chip = ivd_dtmb26_chip();
    let policy = used_cells_policy(&chip);
    let biochip = Biochip::from_array(chip.array.clone()).with_policy(policy.clone());
    let model = MtbfModel::new(1_000.0, 1.0);
    // Find the horizon with ~10 expected failures on 343 cells.
    let region = chip.array.region();
    let mut horizon = 10.0;
    while model.expected_failures(region, horizon) < 10.0 {
        horizon += 5.0;
    }
    let m = model.expected_failures(region, horizon).round() as usize;
    // MC: sample failure sets from the MTBF model and test
    // reconfigurability directly.
    let mut rng = StdRng::seed_from_u64(0x11CE);
    let trials = 800;
    let mut ok = 0u32;
    for _ in 0..trials {
        let cells: Vec<HexCoord> = model
            .sample_failures(region, horizon, &mut rng)
            .into_iter()
            .map(|f| f.cell)
            .collect();
        let defects = DefectMap::from_cells(cells);
        if attempt_reconfiguration(&chip.array, &defects, &policy).is_ok() {
            ok += 1;
        }
    }
    let mtbf_yield = f64::from(ok) / f64::from(trials);
    let fig13_yield = biochip.exact_fault_yield(m, 4_000, 0xF16).point();
    // Poisson-distributed counts vs fixed m: close but not identical.
    assert!(
        (mtbf_yield - fig13_yield).abs() < 0.08,
        "mtbf {mtbf_yield} vs fig13@{m} {fig13_yield}"
    );
}
