//! Integration tests asserting the paper's concrete numbers and shapes.

use dmfb_core::prelude::*;
use dmfb_integration_tests::{TEST_SEEDS, TEST_TRIALS};

/// Table 1: the redundancy-ratio limits.
#[test]
fn table1_redundancy_ratios() {
    let expected = [
        (DtmbKind::Dtmb16, 0.1667),
        (DtmbKind::Dtmb26A, 0.3333),
        (DtmbKind::Dtmb36, 0.5000),
        (DtmbKind::Dtmb44, 1.0000),
    ];
    for (kind, rr) in expected {
        assert!(
            (kind.redundancy_ratio_limit() - rr).abs() < 5e-4,
            "{kind}: {}",
            kind.redundancy_ratio_limit()
        );
    }
}

/// Section 7: the non-redundant 108-cell chip yields 0.3378 at p = 0.99 —
/// analytically and by Monte-Carlo.
#[test]
fn section7_headline_number() {
    assert!((no_redundancy_yield(0.99, 108) - 0.3378).abs() < 5e-4);
    let chip = Biochip::without_redundancy(108);
    let mc = chip.yield_report(0.99, 10_000, TEST_SEEDS[0]);
    assert!(
        (mc.reconfigured_yield.point() - 0.3378).abs() < 0.02,
        "mc {}",
        mc.reconfigured_yield.point()
    );
}

/// Figure 7 shape: DTMB(1,6) dominates the no-redundancy baseline and
/// yield decreases with array size.
#[test]
fn figure7_shape() {
    for &n in &[60usize, 120, 240] {
        for &p in &[0.92, 0.96, 0.99] {
            assert!(dtmb16_yield(p, n) > no_redundancy_yield(p, n));
        }
    }
    assert!(dtmb16_yield(0.95, 60) > dtmb16_yield(0.95, 120));
    assert!(dtmb16_yield(0.95, 120) > dtmb16_yield(0.95, 240));
}

/// Figure 9 shape: higher redundancy gives higher yield at fixed (n, p),
/// and everything beats the baseline.
#[test]
fn figure9_ordering() {
    let n = 100;
    let p = 0.92;
    let yields: Vec<f64> = [DtmbKind::Dtmb26A, DtmbKind::Dtmb36, DtmbKind::Dtmb44]
        .iter()
        .map(|&k| {
            Biochip::dtmb(k, n)
                .yield_report(p, TEST_TRIALS, TEST_SEEDS[1])
                .reconfigured_yield
                .point()
        })
        .collect();
    assert!(yields[0] > no_redundancy_yield(p, n) + 0.2);
    assert!(yields[1] >= yields[0] - 0.02, "36 vs 26: {yields:?}");
    assert!(yields[2] >= yields[1] - 0.02, "44 vs 36: {yields:?}");
}

/// Figure 10 shape: effective yield crosses over — DTMB(4,4) wins at low
/// p, a leaner design wins at high p.
#[test]
fn figure10_crossover() {
    let n = 100;
    let lean = Biochip::dtmb(DtmbKind::Dtmb16, n);
    let fat = Biochip::dtmb(DtmbKind::Dtmb44, n);
    let low_p = 0.82;
    let high_p = 0.99;
    let ey =
        |chip: &Biochip, p: f64, seed: u64| chip.yield_report(p, TEST_TRIALS, seed).effective_yield;
    assert!(
        ey(&fat, low_p, TEST_SEEDS[2]) > ey(&lean, low_p, TEST_SEEDS[2]),
        "DTMB(4,4) must win on EY at p={low_p}"
    );
    assert!(
        ey(&lean, high_p, TEST_SEEDS[3]) > ey(&fat, high_p, TEST_SEEDS[3]),
        "DTMB(1,6) must win on EY at p={high_p}"
    );
}

/// Figure 13 shape: the case-study chip's yield is monotone non-increasing
/// in the fault count and stays high deep into double-digit fault counts.
#[test]
fn figure13_case_study_shape() {
    let chip = ivd_dtmb26_chip();
    assert_eq!(chip.array.primary_count(), 252);
    assert_eq!(chip.array.spare_count(), 91);
    let biochip = Biochip::from_array(chip.array.clone()).with_policy(used_cells_policy(&chip));
    let ms = [0usize, 10, 25, 45];
    let mut last = f64::INFINITY;
    for (i, &m) in ms.iter().enumerate() {
        let y = biochip
            .exact_fault_yield(m, TEST_TRIALS, TEST_SEEDS[0] + i as u64)
            .point();
        assert!(y <= last + 0.03, "yield must not increase with m");
        last = y;
    }
    // The paper reports >= 0.90 up to m = 35; with our denser assay block
    // the crossing lands near m = 30 — still "tens of faults tolerated".
    let y25 = biochip
        .exact_fault_yield(25, TEST_TRIALS, TEST_SEEDS[1])
        .point();
    assert!(y25 >= 0.90, "yield at m=25 should be >= 0.90, got {y25}");
    // And the redundancy is what does it: all-primaries policy is far worse.
    let strict = Biochip::from_array(chip.array);
    let y25_strict = strict
        .exact_fault_yield(25, TEST_TRIALS, TEST_SEEDS[1])
        .point();
    assert!(y25 > y25_strict + 0.1);
}

/// Figure 2: the spare-row baseline reconfigures fault-free modules and
/// dies on a second faulty row; local reconfiguration does neither.
#[test]
fn figure2_baseline_contrast() {
    let baseline = SpareRowArray::figure2_example();
    let cascade = baseline
        .shifted_replacement(&[SquareCoord::new(0, 0)])
        .unwrap();
    assert!(
        cascade.modules_reconfigured.len() == 3,
        "fault farthest from the spare row drags every module"
    );
    assert!(baseline
        .shifted_replacement(&[SquareCoord::new(0, 0), SquareCoord::new(0, 2)])
        .is_err());

    let dtmb = DtmbKind::Dtmb26A.with_primary_count(48);
    let faulty: Vec<HexCoord> = dtmb.primaries().step_by(9).take(2).collect();
    let plan = attempt_reconfiguration(
        &dtmb,
        &DefectMap::from_cells(faulty),
        &ReconfigPolicy::AllPrimaries,
    )
    .expect("two scattered faults are locally tolerable");
    assert_eq!(plan.len(), 2, "exactly one spare per faulty cell");
}
