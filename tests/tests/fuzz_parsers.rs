//! Seeded mutation fuzzing for the three untrusted-input parsers.
//!
//! The environment vendors no cargo-fuzz, so these are cargo-fuzz-style
//! harnesses as ordinary `#[test]`s: a deterministic
//! [`SeedSequence`]-driven mutator takes the committed seed corpus under
//! `tests/corpus/<target>/`, applies byte- and token-level mutations, and
//! feeds the result to the parser under test. The single invariant is
//! that the parser **never panics** — every malformed input must come
//! back as a clean `Err`. Valid corpus entries double as regression
//! anchors: unmutated they must parse `Ok`, and `invalid_*` entries must
//! parse `Err`, so the corpus itself cannot rot.
//!
//! Every mutation is a pure function of `(FUZZ_SEED, corpus entry,
//! iteration)`, so a failure report names the exact `(entry, iteration)`
//! pair and the run reproduces byte-for-byte on any machine and thread
//! count. CI runs each harness for at least 10 000 iterations
//! (`DMFB_FUZZ_ITERS` raises the default) and the final coverage line
//! reports how many inputs each side of the accept/reject split saw.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use dmfb_sim::SeedSequence;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Master seed of every harness in this file. Changing it re-rolls the
/// whole fuzz schedule, so treat it like a golden value.
const FUZZ_SEED: u64 = 0x2005_0090_DA7E_F002;

/// Default iteration budget per harness; `DMFB_FUZZ_ITERS` overrides.
const DEFAULT_ITERS: u64 = 10_000;

/// Mutated inputs are capped so hostile growth mutations cannot make the
/// harness quadratic.
const MAX_INPUT_LEN: usize = 1 << 16;

/// Tokens spliced into inputs by the dictionary mutation: JSON and DSL
/// structure, numeric edge cases, and keywords the parsers branch on.
const DICTIONARY: &[&[u8]] = &[
    b"{",
    b"}",
    b"[",
    b"]",
    b":",
    b",",
    b"\"",
    b"\\",
    b"null",
    b"true",
    b"false",
    b"-1",
    b"1e309",
    b"-0.0",
    b"9007199254740993",
    b"0.5",
    b"1.5",
    b"\n",
    b"#",
    b"scenario ",
    b"step ",
    b"calm",
    b"wipe-column ",
    b"wipe-row ",
    b"cluster ",
    b"radius ",
    b"peak ",
    b"wear ",
    b"mtbf ",
    b"stress ",
    b"hours ",
    b"drift ",
    b"sigma ",
    b"tolerance ",
    b"salvo ",
    b"\"tier\"",
    b"\"operational\"",
    b"\"assay\"",
    b"\"schema\"",
    b"dmfb-bench/1",
    b"\"entries\"",
    b"\"p\"",
    b"\"trials\"",
    b"\xff\xfe",
    b"\xe2\x82",
];

/// One committed corpus entry: its file name and raw bytes.
struct CorpusEntry {
    name: String,
    bytes: Vec<u8>,
}

/// Loads `tests/corpus/<target>/`, sorted by file name so the fuzz
/// schedule is independent of directory iteration order.
fn load_corpus(target: &str) -> Vec<CorpusEntry> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("corpus")
        .join(target);
    let mut entries: Vec<CorpusEntry> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read corpus dir {}: {e}", dir.display()))
        .map(|entry| {
            let path = entry.expect("corpus dir entry").path();
            CorpusEntry {
                name: path
                    .file_name()
                    .expect("corpus file name")
                    .to_string_lossy()
                    .into_owned(),
                bytes: std::fs::read(&path)
                    .unwrap_or_else(|e| panic!("read {}: {e}", path.display())),
            }
        })
        .collect();
    entries.sort_by(|a, b| a.name.cmp(&b.name));
    assert!(
        entries.iter().any(|e| e.name.starts_with("valid_")),
        "corpus {target} needs at least one valid_* seed"
    );
    assert!(
        entries.iter().any(|e| e.name.starts_with("invalid_")),
        "corpus {target} needs at least one invalid_* seed"
    );
    entries
}

/// Iteration budget: `DMFB_FUZZ_ITERS` if set, else [`DEFAULT_ITERS`].
fn fuzz_iters() -> u64 {
    match std::env::var("DMFB_FUZZ_ITERS") {
        Ok(v) => v
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("DMFB_FUZZ_ITERS must be an integer, got '{v}'")),
        Err(_) => DEFAULT_ITERS,
    }
}

/// Applies 1–8 random byte- or token-level edits to `seed_input`.
fn mutate(rng: &mut StdRng, seed_input: &[u8]) -> Vec<u8> {
    let mut data = seed_input.to_vec();
    let edits = 1 + (rng.next_u32() as usize % 8);
    for _ in 0..edits {
        match rng.next_u32() % 6 {
            // Flip one bit.
            0 if !data.is_empty() => {
                let i = rng.gen_range(0..data.len());
                data[i] ^= 1 << (rng.next_u32() % 8);
            }
            // Overwrite one byte with an arbitrary value.
            1 if !data.is_empty() => {
                let i = rng.gen_range(0..data.len());
                data[i] = (rng.next_u32() & 0xFF) as u8;
            }
            // Insert an arbitrary byte.
            2 if data.len() < MAX_INPUT_LEN => {
                let i = rng.gen_range(0..=data.len());
                data.insert(i, (rng.next_u32() & 0xFF) as u8);
            }
            // Delete a short run.
            3 if !data.is_empty() => {
                let i = rng.gen_range(0..data.len());
                let n = (1 + rng.next_u32() as usize % 8).min(data.len() - i);
                data.drain(i..i + n);
            }
            // Duplicate a short slice somewhere else.
            4 if !data.is_empty() && data.len() < MAX_INPUT_LEN => {
                let i = rng.gen_range(0..data.len());
                let n = (1 + rng.next_u32() as usize % 16).min(data.len() - i);
                let slice: Vec<u8> = data[i..i + n].to_vec();
                let at = rng.gen_range(0..=data.len());
                data.splice(at..at, slice);
            }
            // Splice a dictionary token.
            _ if data.len() < MAX_INPUT_LEN => {
                let token = DICTIONARY[rng.gen_range(0..DICTIONARY.len())];
                let at = rng.gen_range(0..=data.len());
                data.splice(at..at, token.iter().copied());
            }
            _ => {}
        }
    }
    data
}

/// Fully random bytes (no corpus ancestry) — the "from scratch" lane.
fn random_bytes(rng: &mut StdRng) -> Vec<u8> {
    let len = rng.gen_range(0..512usize);
    (0..len).map(|_| (rng.next_u32() & 0xFF) as u8).collect()
}

/// Drives one parser through corpus sanity checks plus `fuzz_iters()`
/// mutated inputs. `target` returns whether the parser accepted the
/// input; panics inside it are caught and reported with the reproducing
/// `(entry, iteration)` coordinates.
fn run_fuzz(name: &str, corpus: &str, target: impl Fn(&[u8]) -> bool) {
    let entries = load_corpus(corpus);
    for entry in &entries {
        let accepted = target(&entry.bytes);
        if entry.name.starts_with("valid_") {
            assert!(accepted, "{name}: corpus seed {} must parse Ok", entry.name);
        } else {
            assert!(
                !accepted,
                "{name}: corpus seed {} must parse Err",
                entry.name
            );
        }
    }

    let iters = fuzz_iters();
    let (mut accepted, mut rejected) = (0u64, 0u64);
    for i in 0..iters {
        let entry = &entries[(i as usize) % entries.len()];
        let mut rng = StdRng::seed_from_u64(SeedSequence::nth_seed(FUZZ_SEED, i));
        // Every 16th input is built from scratch instead of mutated, so
        // pure-noise prefixes are covered alongside near-valid documents.
        let input = if i % 16 == 0 {
            random_bytes(&mut rng)
        } else {
            mutate(&mut rng, &entry.bytes)
        };
        match catch_unwind(AssertUnwindSafe(|| target(&input))) {
            Ok(true) => accepted += 1,
            Ok(false) => rejected += 1,
            Err(_) => panic!(
                "{name}: parser panicked at iteration {i} \
                 (seed {FUZZ_SEED:#x}, corpus entry {}, {} bytes):\n{:?}",
                entry.name,
                input.len(),
                String::from_utf8_lossy(&input),
            ),
        }
    }
    println!(
        "fuzz {name}: corpus={} iterations={iters} accepted={accepted} rejected={rejected}",
        entries.len()
    );
    assert_eq!(accepted + rejected, iters);
    assert!(rejected > 0, "{name}: mutations never produced an Err");
}

/// `serve::request::parse_yield_request` — the wire-facing `/v1/yield`
/// body validator. Raw bytes in, so non-UTF-8 lanes matter here.
#[test]
fn fuzz_serve_request_parser_never_panics() {
    run_fuzz("serve_request", "serve_request", |input| {
        dmfb_serve::parse_yield_request(input).is_ok()
    });
}

/// `BenchReport::from_json` — the `--compare`/soak-gate reader that can
/// be handed artifacts fetched over the wire.
#[test]
fn fuzz_bench_report_parser_never_panics() {
    run_fuzz("bench_report", "bench_report", |input| {
        match std::str::from_utf8(input) {
            Ok(text) => dmfb_bench::BenchReport::from_json(text).is_ok(),
            // from_json takes &str; invalid UTF-8 is rejected upstream.
            Err(_) => false,
        }
    });
}

/// `Scenario::parse` — the campaign DSL front-end behind
/// `dmfb campaign --script`.
#[test]
fn fuzz_scenario_dsl_parser_never_panics() {
    run_fuzz(
        "scenario_dsl",
        "scenario_dsl",
        |input| match std::str::from_utf8(input) {
            Ok(text) => dmfb_defects::Scenario::parse(text).is_ok(),
            Err(_) => false,
        },
    );
}

/// The fuzz schedule is a pure function of the master seed: replaying an
/// iteration index regenerates the identical input bytes. This is what
/// makes a CI failure report reproducible locally.
#[test]
fn fuzz_inputs_replay_byte_identically() {
    let entries = load_corpus("scenario_dsl");
    for i in [1u64, 2, 5, 17, 4242] {
        let entry = &entries[(i as usize) % entries.len()];
        let mut a = StdRng::seed_from_u64(SeedSequence::nth_seed(FUZZ_SEED, i));
        let mut b = StdRng::seed_from_u64(SeedSequence::nth_seed(FUZZ_SEED, i));
        assert_eq!(mutate(&mut a, &entry.bytes), mutate(&mut b, &entry.bytes));
    }
}
