//! Cross-validation between independent implementations of the same
//! quantity: analytical vs Monte-Carlo, matching vs brute logic, raw yield
//! vs closed form.

use dmfb_core::prelude::*;
use dmfb_integration_tests::TEST_SEEDS;

/// The DTMB(1,6) Monte-Carlo estimate brackets the analytical cluster
/// model (MC runs slightly above it: boundary spares have less
/// contention).
#[test]
fn dtmb16_analytic_vs_monte_carlo() {
    let n = 120;
    let chip = Biochip::dtmb(DtmbKind::Dtmb16, n);
    for (i, &p) in [0.94, 0.97, 0.99].iter().enumerate() {
        let mc = chip
            .yield_report(p, 8_000, TEST_SEEDS[0] + i as u64)
            .reconfigured_yield
            .point();
        let analytic = dtmb16_yield(p, n);
        assert!(
            (mc - analytic).abs() < 0.06,
            "p={p}: mc {mc} vs analytic {analytic}"
        );
        assert!(mc >= analytic - 0.02, "MC should not undershoot the model");
    }
}

/// Raw (unreconfigured) yield equals `p^scope` for every design: spares
/// don't matter when you never use them.
#[test]
fn raw_yield_matches_power_law() {
    for kind in [DtmbKind::Dtmb26A, DtmbKind::Dtmb44] {
        let chip = Biochip::dtmb(kind, 90);
        let p = 0.99;
        let report = chip.yield_report(p, 8_000, TEST_SEEDS[1]);
        let expected = no_redundancy_yield(p, chip.array().primary_count());
        assert!(
            (report.raw_yield.point() - expected).abs() < 0.03,
            "{kind}: raw {} vs p^n {expected}",
            report.raw_yield.point()
        );
    }
}

/// Effective yield exactly equals `Y * n / N` for the measured Y.
#[test]
fn effective_yield_definition_holds() {
    let chip = Biochip::dtmb(DtmbKind::Dtmb36, 100);
    let report = chip.yield_report(0.95, 2_000, TEST_SEEDS[2]);
    let n = chip.array().primary_count() as f64;
    let total = chip.array().total_cells() as f64;
    let expected = report.reconfigured_yield.point() * n / total;
    assert!((report.effective_yield - expected).abs() < 1e-12);
}

/// The two DTMB(2,6) placements (Figures 4(a) and 4(b)) are statistically
/// interchangeable.
#[test]
fn dtmb26_variants_agree() {
    let p = 0.94;
    let a = Biochip::dtmb(DtmbKind::Dtmb26A, 100)
        .yield_report(p, 6_000, TEST_SEEDS[3])
        .reconfigured_yield
        .point();
    let b = Biochip::dtmb(DtmbKind::Dtmb26B, 100)
        .yield_report(p, 6_000, TEST_SEEDS[3])
        .reconfigured_yield
        .point();
    assert!((a - b).abs() < 0.04, "variant A {a} vs variant B {b}");
}

/// Spare-count upper bound from `dmfb-yield::analytical` dominates every
/// Monte-Carlo estimate (sanity tie between the analytic and MC stacks).
#[test]
fn spare_count_bound_dominates_mc() {
    use dmfb_core::yield_model::analytical::spare_count_upper_bound;
    for kind in DtmbKind::TABLE1 {
        let chip = Biochip::dtmb(kind, 80);
        let p = 0.93;
        let mc = chip
            .yield_report(p, 3_000, TEST_SEEDS[0])
            .reconfigured_yield
            .point();
        let bound =
            spare_count_upper_bound(p, chip.array().primary_count(), chip.array().spare_count());
        assert!(
            mc <= bound + 0.02,
            "{kind}: mc {mc} exceeds spare-count bound {bound}"
        );
    }
}

/// Yield is monotone in p for every design (MC sanity).
#[test]
fn yield_monotone_in_survival() {
    for kind in DtmbKind::TABLE1 {
        let chip = Biochip::dtmb(kind, 80);
        let lo = chip
            .yield_report(0.90, 3_000, TEST_SEEDS[1])
            .reconfigured_yield
            .point();
        let hi = chip
            .yield_report(0.97, 3_000, TEST_SEEDS[1])
            .reconfigured_yield
            .point();
        assert!(hi >= lo - 0.02, "{kind}: {lo} -> {hi}");
    }
}
