//! Properties of the `dmfb search` design-space scorer: determinism
//! (thread-count invariance, rerun identity), Pareto-frontier soundness
//! (no dominated row; every emitted row realizable under re-evaluation),
//! the exact-pruning cost contract, and a spare-row closed-form anchor.

use dmfb_core::search::{run_search, SearchConfig, SearchSpace};
use dmfb_core::spec::SchemeSpec;
use dmfb_core::Tier;

/// A small capped space that still exercises all three scheme families.
fn small_config(seed: u64) -> SearchConfig {
    let mut config = SearchConfig::new(0.95);
    config.trials = 600;
    config.seed = seed;
    config.space = SearchSpace {
        max_primaries: 60,
        max_dim: 12,
    };
    config
}

/// The report is a pure function of the config: single-threaded,
/// auto-threaded and repeated runs all agree field-for-field (the CLI
/// renders straight from the report, so this is byte-identity of the
/// emitted frontier too).
#[test]
fn search_reports_are_thread_and_rerun_invariant() {
    for seed in [1u64, 7, 0xDEAD] {
        let mut config = small_config(seed);
        config.threads = 1;
        let single = run_search(&config);
        config.threads = 0;
        let auto = run_search(&config);
        assert_eq!(single, auto, "seed {seed}: threads changed the report");
        let again = run_search(&config);
        assert_eq!(auto, again, "seed {seed}: rerun diverged");
    }
}

/// No frontier row is dominated by another, rows ascend strictly in both
/// overhead and yield, and every frontier row also appears in `scored`.
#[test]
fn frontier_is_sound_and_stably_ordered() {
    let report = run_search(&small_config(3));
    assert!(!report.frontier.is_empty());
    for pair in report.frontier.windows(2) {
        assert!(
            pair[0].overhead < pair[1].overhead,
            "overhead must strictly ascend"
        );
        assert!(
            pair[0].yield_point.unwrap() < pair[1].yield_point.unwrap(),
            "yield must strictly ascend along the frontier"
        );
    }
    for row in &report.frontier {
        assert!(
            report.scored.iter().any(|s| s == row),
            "frontier row {} must come from the scored set",
            row.spec
        );
        for other in &report.scored {
            let dominates = other.yield_point.is_some()
                && other.overhead <= row.overhead
                && other.yield_point.unwrap() >= row.yield_point.unwrap()
                && (other.overhead < row.overhead
                    || other.yield_point.unwrap() > row.yield_point.unwrap());
            assert!(
                !dominates,
                "{} dominates frontier row {}",
                other.spec, row.spec
            );
        }
    }
}

/// Every emitted frontier row is realizable: re-scoring the same space at
/// a 4x trial budget (and a different seed) lands each spec's new
/// estimate inside — or within sampling slack of — the original 95%
/// interval. A fabricated frontier point would not survive this.
#[test]
fn frontier_rows_are_realizable_at_higher_trial_count() {
    let config = small_config(11);
    let report = run_search(&config);
    let mut refined = config;
    refined.trials = config.trials * 4;
    refined.seed = config.seed ^ 0x5A5A;
    let re_report = run_search(&refined);
    for row in &report.frontier {
        let re_row = re_report
            .scored
            .iter()
            .find(|s| s.spec == row.spec)
            .expect("same space enumerates the same specs");
        let re_y = re_row
            .yield_point
            .expect("a candidate above the bound stays above it");
        // Both estimates carry 95% intervals; demand the refined point
        // fall within the original interval widened by its own margin.
        let slack = (re_row.ci_hi - re_row.ci_lo).max(0.02);
        assert!(
            re_y >= row.ci_lo - slack && re_y <= row.ci_hi + slack,
            "{}: refined {re_y} outside [{}, {}] + {slack}",
            row.spec,
            row.ci_lo,
            row.ci_hi
        );
    }
}

/// The cost contract behind the tentpole: exact Hall-bound pruning must
/// eliminate candidates before sampling, and the total trial spend must
/// come in below naive 40k-per-candidate scoring.
#[test]
fn pruning_reduces_cost_against_naive_scoring() {
    let mut config = small_config(5);
    config.target_yield = 0.99;
    let report = run_search(&config);
    assert!(report.pruned > 0, "hopeless candidates must be pruned");
    assert_eq!(report.pruned + report.evaluated, report.candidates);
    let pruned_rows: Vec<_> = report.scored.iter().filter(|r| r.pruned).collect();
    assert!(pruned_rows
        .iter()
        .all(|r| r.trials_used == 0 && r.yield_point.is_none()));
    assert!(
        report.trials_used < report.naive_trials / 10,
        "{} trials vs naive {}",
        report.trials_used,
        report.naive_trials
    );
}

/// Spare-row closed-form anchor. Under the legacy shifted-replacement
/// semantics the spare rows themselves never fault, so survival is the
/// exact binomial tail `P(#faulty module rows <= spares)` with per-row
/// survival `p^width`. The search's exact upper bound and its stratified
/// estimate must both agree with that closed form.
#[test]
fn spare_row_candidates_match_the_binomial_closed_form() {
    let mut config = small_config(17);
    config.trials = 4_000;
    let report = run_search(&config);
    let closed_form = |width: u32, rows: u32, spares: u32| -> f64 {
        let p_row = config.p.powi(width as i32);
        let q_row = 1.0 - p_row;
        let mut binom = 1.0; // C(rows, k), built incrementally.
        let mut total = 0.0;
        for k in 0..=spares.min(rows) {
            total += binom * q_row.powi(k as i32) * p_row.powi((rows - k) as i32);
            binom = binom * f64::from(rows - k) / f64::from(k + 1);
        }
        total
    };
    let mut checked = 0;
    for row in &report.scored {
        if !row.spec.starts_with("spare-rows:") {
            continue;
        }
        // Recover the geometry from the enumeration itself.
        let candidates = config.space.candidates(Tier::Reconfigured);
        let SchemeSpec::SpareRows {
            width,
            module_rows,
            spare_rows,
        } = candidates
            .iter()
            .find(|c| c.canonical() == row.spec)
            .expect("scored rows come from the enumeration")
        else {
            panic!("spare-rows spec parses back to a spare-rows candidate");
        };
        let expected = closed_form(*width, *module_rows, *spare_rows);
        assert!(
            (row.bound_hi - expected).abs() < 1e-9,
            "{}: exact bound {} vs closed form {expected}",
            row.spec,
            row.bound_hi
        );
        if let Some(y) = row.yield_point {
            let margin = (row.ci_hi - row.ci_lo).max(0.03);
            assert!(
                (y - expected).abs() <= margin,
                "{}: estimate {y} vs closed form {expected} (margin {margin})",
                row.spec
            );
        }
        checked += 1;
    }
    assert!(checked >= 10, "the small space still has spare-row rows");
}
