//! Shared fixtures for the cross-crate integration tests.

/// Deterministic seeds used across integration tests so failures reproduce.
pub const TEST_SEEDS: [u64; 4] = [0xD1F2_0005, 42, 7_777_777, 0xBEEF];

/// Standard trial count for fast-but-stable Monte-Carlo checks in tests.
pub const TEST_TRIALS: u32 = 2_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_distinct() {
        for (i, a) in TEST_SEEDS.iter().enumerate() {
            for b in &TEST_SEEDS[i + 1..] {
                assert_ne!(a, b);
            }
        }
        const { assert!(TEST_TRIALS > 0) };
    }
}
